//! The scheduler: bounded admission, shot-slicing, and coalescing.
//!
//! Three disciplines keep the serving path predictable under load
//! (McKenney's bounded-queue/backpressure guidance):
//!
//! 1. **Bounded admission.** At most `queue_capacity` jobs may be
//!    in flight (queued or executing); further distinct requests are
//!    rejected with `busy` + a retry hint instead of growing an
//!    unbounded queue. Rejection is *explicit backpressure* — the
//!    client knows immediately, instead of timing out.
//! 2. **Shot-slicing for fairness.** A job's shots are carved into
//!    `slice_shots`-sized ranges and the job queue is rotated
//!    round-robin, so a 10⁶-shot job cannot convoy short jobs behind
//!    it. Slices execute through the engine's *ranged* primitives on
//!    the job's global shot indices, so the merged tallies are
//!    **bit-identical** to one uninterrupted `Backend::sample_shots`
//!    call — slicing changes latency distribution, never results.
//! 3. **Coalescing.** A request identical to an in-flight job (same
//!    [`CacheKey`]: canonical circuit, backend, shots, seed) attaches
//!    to that job as an extra waiter instead of executing again;
//!    determinism guarantees every waiter receives the same tallies.
//! 4. **Per-client fair share.** Jobs are grouped by the request's
//!    `client` identity (absent ⇒ the anonymous client `""`), and
//!    slices round-robin across *clients* first, then across each
//!    client's jobs — so a client submitting ten jobs gets the same
//!    slice cadence as one submitting one. A per-client in-flight shot
//!    quota ([`SchedulerConfig::client_quota_shots`]) additionally
//!    bounds how much queued work a single identity can hold; beyond
//!    it, that client's *distinct* new jobs are rejected `busy`
//!    (coalescing onto in-flight work stays free — it costs nothing).
//!
//! The interleaving is deterministic: admission order fixes the
//! client ring and each client's job queue, so a given submission
//! sequence always carves the same slice sequence.
//!
//! The scheduler is a passive `Mutex`+`Condvar` structure: connection
//! threads call [`Scheduler::submit`] (or the reactor's non-blocking
//! twin [`Scheduler::submit_async`]), the server's worker pool drains
//! [`Scheduler::next_slice`] / [`Scheduler::complete_slice`].

use crate::admission::admit;
use crate::cache::{CacheKey, DiskCacheConfig, ResultCache};
use crate::protocol::{ClientRow, Response, RunRequest, ServiceStats};
use circuit::caps::Unsupported;
use circuit::circuit::Circuit;
use engine::{Backend, Counts, Engine, ShotPlan, TraceSink};
use qsim::density::{run_deferred, DensityMatrix};
use qsim::runner::pack_cbits;
use qsim::statevector::StateVector;
use stabilizer::clifford::CliffordState;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Most qubits a served circuit may declare. The exponential backends
/// bound themselves far below this (statevector ≤ 26, density ≤ 13);
/// this cap exists for the stabilizer tableau, whose O(n²) state has
/// no intrinsic limit — without it, a hostile register declaration
/// becomes an allocation abort instead of an error response.
pub const MAX_REQUEST_QUBITS: usize = 1024;

/// Most classical bits a served circuit may declare: records are
/// packed into one 64-bit word (the `sample_shots` tally convention).
pub const MAX_REQUEST_CBITS: usize = 64;

/// Admission and slicing knobs.
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Maximum jobs in flight (queued + executing) before distinct new
    /// requests are rejected with `busy`.
    pub queue_capacity: usize,
    /// Shots per slice — the fairness quantum. Large jobs are carved
    /// into ranges of this size and interleaved round-robin.
    pub slice_shots: u64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Most in-flight (queued + executing) shots one client identity
    /// may hold; a distinct new job that would exceed it is rejected
    /// `busy` and counted in `rejected_quota`. `u64::MAX` (the
    /// default) disables the quota.
    pub client_quota_shots: u64,
    /// Sustained shots-per-second each client identity may submit,
    /// enforced as a token bucket with a one-second burst (capacity =
    /// the rate; a single job larger than the rate is always
    /// rejected). Beyond it, distinct new jobs are rejected `busy` and
    /// counted in `rejected_rate`. Like the in-flight quota,
    /// coalescing and cache hits stay free. `u64::MAX` (the default)
    /// disables rate limiting.
    pub client_quota_shots_per_sec: u64,
    /// Optional observability registry. When set, the scheduler
    /// records per-stage latency histograms (`stage.parse`,
    /// `stage.admission`, `stage.cache_lookup`, `stage.compile`,
    /// `stage.merge`), cache counters (`cache.{hits,misses,
    /// evictions}`), admission counters (`sched.*`), and a slow-trace
    /// ring. Instrumentation never changes a served byte.
    pub metrics: Option<obs::Registry>,
    /// Optional disk tier for the result cache: completed results are
    /// persisted (write-through) and a restarted scheduler serves them
    /// warm. `None` keeps the cache memory-only.
    pub disk: Option<DiskCacheConfig>,
    /// Optional shot-trace recorder. When set, every executed slice
    /// also delivers its per-shot records here (global shot indices, so
    /// a sliced job's records union to the full run). Recording is
    /// execution-side only — responses, caching, and coalescing are
    /// byte-identical with or without a sink.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_capacity: 32,
            slice_shots: 4096,
            cache_capacity: 256,
            client_quota_shots: u64::MAX,
            client_quota_shots_per_sec: u64::MAX,
            metrics: None,
            disk: None,
            trace_sink: None,
        }
    }
}

impl std::fmt::Debug for SchedulerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("slice_shots", &self.slice_shots)
            .field("cache_capacity", &self.cache_capacity)
            .field("client_quota_shots", &self.client_quota_shots)
            .field(
                "client_quota_shots_per_sec",
                &self.client_quota_shots_per_sec,
            )
            .field("metrics", &self.metrics.as_ref().map(|_| "..."))
            .field("disk", &self.disk)
            .field("trace_sink", &self.trace_sink.as_ref().map(|_| "..."))
            .finish()
    }
}

/// A job compiled once at admission; every slice replays it.
///
/// This is the per-backend execution form behind the serving path: the
/// statevector and stabilizer arms hold a [`ShotPlan`] (circuit
/// compiled once via `SimState::compile`), the density arm holds the
/// once-evolved ρ from which each shot's record is drawn — exactly the
/// shapes `Backend::sample_shots` uses, so slices tally identically.
pub enum PreparedJob {
    /// Fused-kernel statevector replay.
    StateVector(ShotPlan<StateVector>),
    /// Stabilizer-tableau replay.
    Stabilizer(ShotPlan<CliffordState>),
    /// Deferred-measurement density evolution: ρ is evolved **once**
    /// here; slices only draw classical records from it.
    Density {
        /// The final density matrix.
        rho: DensityMatrix,
        /// Classical register width.
        num_cbits: usize,
        /// Root seed for the per-shot record draws.
        root_seed: u64,
    },
}

impl PreparedJob {
    /// Compiles `circuit` for the resolved backend. `shot_end` is the
    /// job's **global** end index (`start + shots` for a ranged job,
    /// plain `shots` otherwise): the plans are built to that bound so
    /// [`PreparedJob::run_range`] accepts any sub-range of the job's
    /// global indices.
    ///
    /// # Errors
    ///
    /// Propagates the backend's capability probe.
    pub fn prepare(
        circuit: &Circuit,
        backend: Backend,
        shot_end: u64,
        root_seed: u64,
    ) -> Result<(Backend, PreparedJob), Unsupported> {
        let resolved = backend.resolve(circuit);
        resolved.supports(circuit)?;
        let n = circuit.num_qubits();
        let job = match resolved {
            Backend::StateVector => PreparedJob::StateVector(ShotPlan::new(
                circuit.clone(),
                StateVector::new(n),
                shot_end,
                root_seed,
            )),
            Backend::Stabilizer => PreparedJob::Stabilizer(ShotPlan::new(
                circuit.clone(),
                CliffordState::new(n),
                shot_end,
                root_seed,
            )),
            Backend::Density => PreparedJob::Density {
                rho: run_deferred(circuit, &DensityMatrix::new(n)),
                num_cbits: circuit.num_cbits(),
                root_seed,
            },
            other => unreachable!("resolve never returns {other}"),
        };
        Ok((resolved, job))
    }

    /// Executes the global shot indices `range` of this job. Merging
    /// the counts of a partition of `0..shots` reproduces the
    /// uninterrupted run bit-identically (the engine's ranged-fold
    /// guarantee).
    pub fn run_range(&self, engine: &Engine, range: Range<u64>) -> Counts {
        match self {
            PreparedJob::StateVector(plan) => engine.run_plan_range(plan, range),
            PreparedJob::Stabilizer(plan) => engine.run_plan_range(plan, range),
            PreparedJob::Density {
                rho,
                num_cbits,
                root_seed,
            } => {
                // Mirrors the density arm of `Backend::sample_shots`:
                // the workspace is just the classical register.
                let tally = engine.run_tally_range_with(
                    range,
                    *root_seed,
                    || vec![false; *num_cbits],
                    |cbits, _shot, rng| {
                        cbits.iter_mut().for_each(|b| *b = false);
                        rho.sample_record(cbits, rng);
                        pack_cbits(cbits)
                    },
                );
                tally.into_iter().map(|(k, v)| (k, v as usize)).collect()
            }
        }
    }

    /// Traced twin of [`PreparedJob::run_range`]: identical counts,
    /// plus one `ShotRecord` per executed shot delivered to `sink`
    /// (global shot indices — a sliced job's records union to the full
    /// run's record set).
    pub fn run_range_traced(
        &self,
        engine: &Engine,
        range: Range<u64>,
        sink: &dyn TraceSink,
    ) -> Counts {
        match self {
            PreparedJob::StateVector(plan) => engine.run_plan_range_traced(plan, range, sink),
            PreparedJob::Stabilizer(plan) => engine.run_plan_range_traced(plan, range, sink),
            PreparedJob::Density {
                rho,
                num_cbits,
                root_seed,
            } => engine.run_record_range_traced(
                range,
                *root_seed,
                || vec![false; *num_cbits],
                |cbits, _shot, rng| {
                    cbits.iter_mut().for_each(|b| *b = false);
                    rho.sample_record(cbits, rng);
                    pack_cbits(cbits) as u64
                },
                sink,
            ),
        }
    }
}

/// One unit of worker work: a slice of a prepared job.
pub struct SliceTask {
    /// The job's identity (hand back to
    /// [`Scheduler::complete_slice`]).
    pub key: CacheKey,
    /// The client identity the slice is charged to (`""` for
    /// anonymous requests) — exposed so fairness tests can assert the
    /// interleaving.
    pub client: String,
    /// The compiled job (shared, read-only).
    pub prepared: Arc<PreparedJob>,
    /// Global shot indices to execute.
    pub range: Range<u64>,
    /// The scheduler's trace sink, if recording (see
    /// [`SchedulerConfig::trace_sink`]). Workers route the slice
    /// through [`PreparedJob::run_range_traced`] when set.
    pub sink: Option<Arc<dyn TraceSink>>,
}

/// How [`Scheduler::submit`] answered.
pub enum Submission {
    /// The response is already known (cache hit, rejection, error, or
    /// a zero-shot run).
    Immediate(Response),
    /// The job is in flight; the response arrives on this channel when
    /// its last slice completes.
    Pending(mpsc::Receiver<Response>),
}

/// Where a pending job's response goes when its last slice lands.
///
/// The blocking [`Scheduler::submit`] path waits on a channel; the
/// reactor path ([`Scheduler::submit_async`]) hands over a one-shot
/// callback that resolves the connection's reply slot. Either way the
/// scheduler fires it exactly once — or drops it on shutdown, which a
/// channel receiver observes as disconnection and a callback owner
/// handles via its abandoned-reply hook.
pub enum Responder {
    /// Deliver on an in-process channel.
    Channel(mpsc::Sender<Response>),
    /// Invoke a one-shot callback (must not block).
    Callback(Box<dyn FnOnce(Response) + Send>),
}

impl Responder {
    /// Fires the responder. A hung-up channel receiver is ignored —
    /// the waiter's connection died, nobody is listening.
    pub fn respond(self, response: Response) {
        match self {
            Responder::Channel(tx) => {
                let _ = tx.send(response);
            }
            Responder::Callback(callback) => callback(response),
        }
    }
}

struct Waiter {
    responder: Responder,
    id: Option<String>,
    coalesced: bool,
}

/// Per-client counters behind the `stats` op's `clients` rows.
#[derive(Default)]
struct ClientTally {
    admitted: u64,
    completed: u64,
    coalesced: u64,
    rejected_quota: u64,
    rejected_rate: u64,
    /// Shots of this client's jobs currently queued or executing —
    /// the quantity the quota bounds.
    inflight_shots: u64,
    /// Token-bucket state for the shots-per-second quota: tokens left
    /// at `bucket_at` (a fresh client starts with a full bucket).
    bucket_tokens: f64,
    bucket_at: Option<Instant>,
}

impl ClientTally {
    /// Refills the token bucket to `now` (capacity = `rate`, i.e. a
    /// one-second burst) and returns the balance.
    fn refill(&mut self, rate: u64, now: Instant) -> f64 {
        let cap = rate as f64;
        let tokens = match self.bucket_at {
            None => cap,
            Some(at) => {
                let elapsed = now.saturating_duration_since(at).as_secs_f64();
                (self.bucket_tokens + elapsed * cap).min(cap)
            }
        };
        self.bucket_tokens = tokens;
        self.bucket_at = Some(now);
        tokens
    }
}

/// Resolved observability handles (see [`SchedulerConfig::metrics`]).
/// Handle resolution locks the registry once at construction;
/// recording afterwards is lock-free.
struct SchedObs {
    parse: obs::Histo,
    admission: obs::Histo,
    cache_lookup: obs::Histo,
    compile: obs::Histo,
    merge: obs::Histo,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    cache_evictions: obs::Counter,
    admitted: obs::Counter,
    completed: obs::Counter,
    coalesced: obs::Counter,
    rejected_busy: obs::Counter,
    rejected_quota: obs::Counter,
    rejected_rate: obs::Counter,
    errors: obs::Counter,
    slow: obs::SlowLog,
    /// Evictions already mirrored from the cache's monotone counter.
    published_evictions: u64,
}

impl SchedObs {
    fn resolve(registry: &obs::Registry) -> SchedObs {
        SchedObs {
            parse: registry.histo("stage.parse"),
            admission: registry.histo("stage.admission"),
            cache_lookup: registry.histo("stage.cache_lookup"),
            compile: registry.histo("stage.compile"),
            merge: registry.histo("stage.merge"),
            cache_hits: registry.counter("cache.hits"),
            cache_misses: registry.counter("cache.misses"),
            cache_evictions: registry.counter("cache.evictions"),
            admitted: registry.counter("sched.admitted"),
            completed: registry.counter("sched.completed"),
            coalesced: registry.counter("sched.coalesced"),
            rejected_busy: registry.counter("sched.rejected_busy"),
            rejected_quota: registry.counter("sched.rejected_quota"),
            rejected_rate: registry.counter("sched.rejected_rate"),
            errors: registry.counter("sched.errors"),
            slow: registry.slow().clone(),
            published_evictions: 0,
        }
    }
}

struct Job {
    prepared: Arc<PreparedJob>,
    /// The identity the job is charged to (`""` for anonymous).
    client: String,
    /// Exclusive global end of the job's shot range (`key.start +
    /// key.shots`).
    end: u64,
    /// Next global shot index not yet handed to a worker (starts at
    /// `key.start`).
    next_shot: u64,
    /// Slices currently executing.
    outstanding: usize,
    partial: Counts,
    waiters: Vec<Waiter>,
    /// When the job was admitted, plus the stage nanoseconds measured
    /// so far — the raw material of its slow-request trace. Telemetry
    /// only; never touches the response.
    admitted_at: Instant,
    parse_ns: u64,
    compile_ns: u64,
    merge_ns: u64,
}

struct Inner {
    config: SchedulerConfig,
    /// Round-robin ring of clients that have jobs with unsliced shots.
    /// Invariant: `ring` holds exactly the keys of `client_queues`
    /// (each of which is non-empty), in rotation order.
    ring: VecDeque<String>,
    /// Per-client round-robin order of that client's unsliced jobs.
    client_queues: HashMap<String, VecDeque<CacheKey>>,
    client_stats: HashMap<String, ClientTally>,
    jobs: HashMap<CacheKey, Job>,
    cache: ResultCache,
    stats: ServiceStats,
    obs: Option<SchedObs>,
    shutdown: bool,
}

impl Inner {
    fn tally(&mut self, client: &str) -> &mut ClientTally {
        // `raw_entry` would avoid the miss-path allocation, but it is
        // unstable; clients are few and the map is hot in cache.
        self.client_stats.entry(client.to_string()).or_default()
    }
}

/// Nanoseconds since `start`, saturated to `u64` (584 years).
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How [`Scheduler::try_attach`] settled (or didn't).
enum Attach {
    /// Cache hit: the response is ready.
    Hit(Response),
    /// Joined an identical in-flight job (the responder was consumed).
    Joined,
    /// No identical work exists; proceed to admission.
    Miss,
}

/// The shared scheduling state. Cheap to clone (`Arc` internally).
#[derive(Clone)]
pub struct Scheduler {
    shared: Arc<(Mutex<Inner>, Condvar)>,
}

impl Scheduler {
    /// A fresh scheduler with the given knobs. With
    /// [`SchedulerConfig::disk`] set, the result cache opens (and
    /// scans) the spill directory — a previous process's results are
    /// warm immediately.
    pub fn new(config: SchedulerConfig) -> Self {
        let cache = match config.disk.clone() {
            Some(disk) => ResultCache::with_disk(config.cache_capacity, disk),
            None => ResultCache::new(config.cache_capacity),
        };
        let obs = config.metrics.as_ref().map(SchedObs::resolve);
        Scheduler {
            shared: Arc::new((
                Mutex::new(Inner {
                    config,
                    ring: VecDeque::new(),
                    client_queues: HashMap::new(),
                    client_stats: HashMap::new(),
                    jobs: HashMap::new(),
                    cache,
                    stats: ServiceStats::default(),
                    obs,
                    shutdown: false,
                }),
                Condvar::new(),
            )),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.shared.0.lock().expect("scheduler poisoned")
    }

    /// Admits one run request: serves it from cache, coalesces it onto
    /// an identical in-flight job, rejects it with `busy`, or queues
    /// it for execution. Blocking-channel form; the reactor path uses
    /// [`Scheduler::submit_async`].
    pub fn submit(&self, id: Option<String>, run: &RunRequest) -> Submission {
        let (tx, rx) = mpsc::channel();
        let mut responder = Some(Responder::Channel(tx));
        match self.submit_core(id, run, &mut responder) {
            Some(response) => Submission::Immediate(response),
            None => Submission::Pending(rx),
        }
    }

    /// Non-blocking twin of [`Scheduler::submit`]: the response —
    /// immediate or eventual — is delivered through `responder`, and
    /// the call itself never waits on execution (only on the scheduler
    /// lock, which is held for queue surgery, never for simulation).
    pub fn submit_async(&self, id: Option<String>, run: &RunRequest, responder: Responder) {
        let mut slot = Some(responder);
        if let Some(response) = self.submit_core(id, run, &mut slot) {
            let responder = slot.take().expect("immediate settle leaves the responder");
            responder.respond(response);
        }
    }

    /// The shared admission path. `Some` is an immediate response
    /// (`responder` untouched); `None` means the job was queued or
    /// joined and `responder` was consumed.
    fn submit_core(
        &self,
        id: Option<String>,
        run: &RunRequest,
        responder: &mut Option<Responder>,
    ) -> Option<Response> {
        // The fair-share identity. `None` and `""` are the same
        // anonymous client by construction.
        let client = run.client.clone().unwrap_or_default();
        // Parse and canonicalize outside the lock — this is the
        // expensive part, and it needs no shared state. The pipeline
        // (backend parse, QASM parse, serving limits, shot-range
        // arithmetic, canonical fingerprint) is shared with the shard
        // coordinator in [`crate::admission`].
        let parse_started = Instant::now();
        let admitted = admit(run);
        let parse_ns = elapsed_ns(parse_started);
        let admitted = match admitted {
            Ok(admitted) => admitted,
            Err(error) => {
                let mut inner = self.lock();
                inner.stats.received += 1;
                inner.stats.errors += 1;
                if let Some(obs) = &inner.obs {
                    obs.parse.record(parse_ns);
                    obs.errors.inc();
                }
                return Some(Response::Error { id, error });
            }
        };
        let key = admitted.key.clone();

        // First pass under the lock: cache, coalescing, admission.
        {
            let mut inner = self.lock();
            inner.stats.received += 1;
            if let Some(obs) = &inner.obs {
                obs.parse.record(parse_ns);
            }
            match self.try_attach(&mut inner, &key, id.clone(), &client, responder) {
                Attach::Hit(response) => return Some(response),
                Attach::Joined => return None,
                Attach::Miss => {}
            }
            if inner.shutdown {
                inner.stats.errors += 1;
                if let Some(obs) = &inner.obs {
                    obs.errors.inc();
                }
                return Some(Response::Error {
                    id,
                    error: "server is shutting down".to_string(),
                });
            }
            if let Some(response) =
                Self::check_admission(&mut inner, &key, &client, id.clone(), false)
            {
                return Some(response);
            }
            if run.shots == 0 {
                // Trivially complete; nothing to queue or cache.
                inner.stats.cache_misses += 1;
                inner.stats.completed += 1;
                if let Some(obs) = &inner.obs {
                    obs.cache_misses.inc();
                    obs.completed.inc();
                }
                return Some(Response::Ok {
                    id,
                    backend: key.backend.to_string(),
                    shots: 0,
                    cached: false,
                    coalesced: false,
                    tallies: Counts::new(),
                });
            }
        }

        // Compile outside the lock (statevector kernel fusion and
        // density evolution can be slow), then re-check: an identical
        // request may have been admitted meanwhile.
        let compile_started = Instant::now();
        let prepared = PreparedJob::prepare(
            &admitted.circuit,
            admitted.requested,
            admitted.shot_end(),
            run.root_seed,
        );
        let compile_ns = elapsed_ns(compile_started);
        let prepared = match prepared {
            Ok((_resolved, job)) => Arc::new(job),
            Err(err) => {
                let mut inner = self.lock();
                inner.stats.errors += 1;
                if let Some(obs) = &inner.obs {
                    obs.compile.record(compile_ns);
                    obs.errors.inc();
                }
                return Some(Response::Error {
                    id,
                    error: err.to_string(),
                });
            }
        };
        let mut inner = self.lock();
        if let Some(obs) = &inner.obs {
            obs.compile.record(compile_ns);
        }
        match self.try_attach(&mut inner, &key, id.clone(), &client, responder) {
            Attach::Hit(response) => return Some(response),
            Attach::Joined => return None,
            Attach::Miss => {}
        }
        if inner.shutdown {
            // Shutdown raced the compile: with the workers gone, a
            // queued job would strand its waiter forever.
            inner.stats.errors += 1;
            if let Some(obs) = &inner.obs {
                obs.errors.inc();
            }
            return Some(Response::Error {
                id,
                error: "server is shutting down".to_string(),
            });
        }
        if let Some(response) = Self::check_admission(&mut inner, &key, &client, id.clone(), true) {
            return Some(response);
        }
        inner.stats.cache_misses += 1;
        if let Some(obs) = &inner.obs {
            obs.cache_misses.inc();
            obs.admitted.inc();
        }
        {
            let tally = inner.tally(&client);
            tally.admitted += 1;
            tally.inflight_shots += key.shots;
        }
        inner.jobs.insert(
            key.clone(),
            Job {
                prepared,
                client: client.clone(),
                end: admitted.shot_end(),
                next_shot: key.start,
                outstanding: 0,
                partial: Counts::new(),
                waiters: vec![Waiter {
                    responder: responder.take().expect("responder available to enqueue"),
                    id,
                    coalesced: false,
                }],
                admitted_at: Instant::now(),
                parse_ns,
                compile_ns,
                merge_ns: 0,
            },
        );
        let fresh_client = !inner.client_queues.contains_key(&client);
        inner
            .client_queues
            .entry(client.clone())
            .or_default()
            .push_back(key);
        if fresh_client {
            inner.ring.push_back(client);
        }
        self.shared.1.notify_all();
        None
    }

    /// Capacity and quota gates, under the lock. `Some` is a `busy`
    /// rejection. The gates run twice per admission (before and after
    /// the compile); only the final pass (`charge = true`) deducts
    /// from the client's rate-limit token bucket, so a job is charged
    /// exactly once, when it is actually admitted. Gate latency feeds
    /// the `stage.admission` histogram.
    fn check_admission(
        inner: &mut Inner,
        key: &CacheKey,
        client: &str,
        id: Option<String>,
        charge: bool,
    ) -> Option<Response> {
        let started = Instant::now();
        let response = Self::check_admission_inner(inner, key, client, id, charge);
        if let Some(obs) = &inner.obs {
            obs.admission.record(elapsed_ns(started));
        }
        response
    }

    fn check_admission_inner(
        inner: &mut Inner,
        key: &CacheKey,
        client: &str,
        id: Option<String>,
        charge: bool,
    ) -> Option<Response> {
        let in_flight = inner.jobs.len() as u64;
        // Crude hint: assume each in-flight job takes ~25 ms.
        let retry_after_ms = 25 * in_flight.max(1);
        if inner.jobs.len() >= inner.config.queue_capacity {
            inner.stats.rejected_busy += 1;
            if let Some(obs) = &inner.obs {
                obs.rejected_busy.inc();
            }
            return Some(Response::Busy {
                id,
                in_flight,
                retry_after_ms,
            });
        }
        let quota = inner.config.client_quota_shots;
        if key.shots > 0 && inner.tally(client).inflight_shots.saturating_add(key.shots) > quota {
            inner.stats.rejected_quota += 1;
            inner.tally(client).rejected_quota += 1;
            if let Some(obs) = &inner.obs {
                obs.rejected_quota.inc();
            }
            return Some(Response::Busy {
                id,
                in_flight,
                retry_after_ms,
            });
        }
        let rate = inner.config.client_quota_shots_per_sec;
        if rate != u64::MAX && key.shots > 0 {
            let now = Instant::now();
            let tally = inner.tally(client);
            let tokens = tally.refill(rate, now);
            if (key.shots as f64) > tokens {
                tally.rejected_rate += 1;
                inner.stats.rejected_rate += 1;
                if let Some(obs) = &inner.obs {
                    obs.rejected_rate.inc();
                }
                return Some(Response::Busy {
                    id,
                    in_flight,
                    retry_after_ms,
                });
            }
            if charge {
                tally.bucket_tokens = tokens - key.shots as f64;
            }
        }
        None
    }

    /// Cache lookup + coalescing check, under the lock.
    fn try_attach(
        &self,
        inner: &mut Inner,
        key: &CacheKey,
        id: Option<String>,
        client: &str,
        responder: &mut Option<Responder>,
    ) -> Attach {
        let lookup_started = Instant::now();
        let hit = inner.cache.get(key);
        if let Some(obs) = &inner.obs {
            obs.cache_lookup.record(elapsed_ns(lookup_started));
        }
        if let Some(tallies) = hit {
            inner.stats.cache_hits += 1;
            if let Some(obs) = &inner.obs {
                obs.cache_hits.inc();
            }
            return Attach::Hit(Response::Ok {
                id,
                backend: key.backend.to_string(),
                shots: key.shots,
                cached: true,
                coalesced: false,
                tallies,
            });
        }
        if inner.jobs.contains_key(key) {
            inner.stats.coalesced += 1;
            if let Some(obs) = &inner.obs {
                obs.coalesced.inc();
            }
            // Coalescing is free — the work runs once regardless — so
            // it is never charged against the client's quota.
            inner.tally(client).coalesced += 1;
            let job = inner.jobs.get_mut(key).expect("job just found");
            job.waiters.push(Waiter {
                responder: responder.take().expect("responder available to join"),
                id,
                coalesced: true,
            });
            return Attach::Joined;
        }
        Attach::Miss
    }

    /// Blocks until a slice is available (or shutdown), then claims
    /// it. The rotation is two-level round-robin: the front *client*
    /// of the ring yields a slice of its front job, then the job goes
    /// to the back of that client's queue if shots remain and the
    /// client goes to the back of the ring if jobs remain — a greedy
    /// client cannot convoy a light one, and a long job cannot convoy
    /// short ones within a client.
    ///
    /// Returns `None` on shutdown — the worker should exit.
    pub fn next_slice(&self) -> Option<SliceTask> {
        let mut inner = self.lock();
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(client) = inner.ring.pop_front() {
                let slice = inner.config.slice_shots.max(1);
                let key = inner
                    .client_queues
                    .get_mut(&client)
                    .expect("ring client has a queue")
                    .pop_front()
                    .expect("ring queues are non-empty");
                let job = inner.jobs.get_mut(&key).expect("queued job exists");
                let start = job.next_shot;
                let end = (start + slice).min(job.end);
                let job_end = job.end;
                job.next_shot = end;
                job.outstanding += 1;
                let prepared = job.prepared.clone();
                if end < job_end {
                    inner
                        .client_queues
                        .get_mut(&client)
                        .expect("queue still present")
                        .push_back(key.clone());
                }
                let exhausted = inner
                    .client_queues
                    .get(&client)
                    .is_none_or(|queue| queue.is_empty());
                if exhausted {
                    inner.client_queues.remove(&client);
                } else {
                    inner.ring.push_back(client.clone());
                }
                let sink = inner.config.trace_sink.clone();
                return Some(SliceTask {
                    key,
                    client,
                    prepared,
                    range: start..end,
                    sink,
                });
            }
            inner = self.shared.1.wait(inner).expect("scheduler poisoned");
        }
    }

    /// Merges a finished slice. When the job's last slice lands, the
    /// result is cached and every waiter (submitter + coalesced) gets
    /// its response.
    pub fn complete_slice(&self, key: &CacheKey, counts: Counts) {
        let mut inner = self.lock();
        // Shutdown may have dropped the job while this slice was
        // executing; its waiters are already failed, so the partial
        // result is simply discarded.
        let Some(job) = inner.jobs.get_mut(key) else {
            return;
        };
        let merge_started = Instant::now();
        for (outcome, n) in counts {
            *job.partial.entry(outcome).or_insert(0) += n;
        }
        job.outstanding -= 1;
        job.merge_ns += elapsed_ns(merge_started);
        if let Some(obs) = &inner.obs {
            obs.merge.record(elapsed_ns(merge_started));
        }
        let job = inner.jobs.get_mut(key).expect("job still present");
        if job.next_shot >= job.end && job.outstanding == 0 {
            // Reborrow through the guard once so the field borrows
            // below are disjoint.
            let inner = &mut *inner;
            let job = inner.jobs.remove(key).expect("job present");
            inner.cache.insert(key.clone(), job.partial.clone());
            inner.stats.completed += 1;
            if let Some(obs) = &mut inner.obs {
                obs.completed.inc();
                let evictions = inner.cache.evictions();
                obs.cache_evictions.add(evictions - obs.published_evictions);
                obs.published_evictions = evictions;
                obs.slow.record(obs::SlowTrace {
                    label: format!("{} shots={}", key.backend, key.shots),
                    total_ns: elapsed_ns(job.admitted_at),
                    stages: vec![
                        ("parse".to_string(), job.parse_ns),
                        ("compile".to_string(), job.compile_ns),
                        ("merge".to_string(), job.merge_ns),
                    ],
                });
            }
            {
                let tally = inner.tally(&job.client);
                tally.completed += 1;
                tally.inflight_shots = tally.inflight_shots.saturating_sub(key.shots);
            }
            for waiter in job.waiters {
                // A waiter whose connection died just drops the send.
                waiter.responder.respond(Response::Ok {
                    id: waiter.id,
                    backend: key.backend.to_string(),
                    shots: key.shots,
                    cached: false,
                    coalesced: waiter.coalesced,
                    tallies: job.partial.clone(),
                });
            }
        }
    }

    /// Counts a malformed request line (protocol-level decode failure
    /// handled by the connection layer).
    pub fn note_error(&self) {
        let mut inner = self.lock();
        inner.stats.received += 1;
        inner.stats.errors += 1;
        if let Some(obs) = &inner.obs {
            obs.errors.inc();
        }
    }

    /// Counter snapshot (gauges filled at read time; the reactor's
    /// connection gauges are merged in by the serving layer).
    pub fn stats(&self) -> ServiceStats {
        let inner = self.lock();
        let mut stats = inner.stats;
        stats.in_flight = inner.jobs.len() as u64;
        stats.cache_entries = inner.cache.len() as u64;
        stats.cache_disk_entries = inner.cache.disk_len() as u64;
        stats
    }

    /// Per-client counter rows for the `stats` op, sorted by client
    /// name (the anonymous client `""` sorts first).
    pub fn client_rows(&self) -> Vec<ClientRow> {
        let inner = self.lock();
        let mut rows: Vec<ClientRow> = inner
            .client_stats
            .iter()
            .map(|(name, tally)| ClientRow {
                client: name.clone(),
                admitted: tally.admitted,
                completed: tally.completed,
                coalesced: tally.coalesced,
                rejected_quota: tally.rejected_quota,
                rejected_rate: tally.rejected_rate,
                inflight_shots: tally.inflight_shots,
            })
            .collect();
        rows.sort_by(|a, b| a.client.cmp(&b.client));
        rows
    }

    /// Stops the scheduler: wakes all workers (they observe shutdown
    /// and exit), drops queued jobs, and fails their waiters (channel
    /// receivers see disconnection; callback responders fire their
    /// owner's abandoned-reply path on drop).
    pub fn shutdown(&self) {
        let mut inner = self.lock();
        inner.shutdown = true;
        inner.ring.clear();
        inner.client_queues.clear();
        inner.jobs.clear();
        // No job survives shutdown, so no shots are in flight.
        for tally in inner.client_stats.values_mut() {
            tally.inflight_shots = 0;
        }
        self.shared.1.notify_all();
    }

    /// Whether [`Scheduler::shutdown`] has run.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::qasm::to_qasm3;

    fn bell_qasm() -> String {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        to_qasm3(&c)
    }

    fn run_request(shots: u64, seed: u64) -> RunRequest {
        RunRequest::new(bell_qasm(), shots, seed, "auto")
    }

    /// Drains every available slice on the calling thread — a
    /// deterministic in-test worker.
    fn drain(sched: &Scheduler, engine: &Engine) {
        while sched.stats().in_flight > 0 {
            let task = sched.next_slice().expect("work pending");
            let counts = task.prepared.run_range(engine, task.range.clone());
            sched.complete_slice(&task.key, counts);
        }
    }

    #[test]
    fn submit_execute_respond_matches_direct_sampling() {
        let sched = Scheduler::new(SchedulerConfig {
            slice_shots: 97, // deliberately odd: many slices per job
            ..SchedulerConfig::default()
        });
        let engine = Engine::sequential();
        let run = run_request(1_000, 7);
        let rx = match sched.submit(Some("a".into()), &run) {
            Submission::Pending(rx) => rx,
            Submission::Immediate(r) => panic!("expected pending, got {r:?}"),
        };
        drain(&sched, &engine);
        let response = rx.recv().unwrap();
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let direct = Backend::Auto
            .sample_shots(&c, 1_000, &engine::Executor::sequential(7))
            .unwrap();
        match response {
            Response::Ok {
                id,
                cached,
                coalesced,
                tallies,
                ..
            } => {
                assert_eq!(id.as_deref(), Some("a"));
                assert!(!cached && !coalesced);
                assert_eq!(tallies, direct, "sliced serving diverged from direct run");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn ranged_jobs_serve_the_exact_slice_of_the_full_run() {
        // The worker side of sharding: a `shot_range` job — even one
        // carved into many scheduler slices — must tally exactly the
        // ranged slice of the full run's global shot indices.
        let sched = Scheduler::new(SchedulerConfig {
            slice_shots: 37,
            ..SchedulerConfig::default()
        });
        let engine = Engine::sequential();
        let run = run_request(0, 7).with_shot_range(250, 750);
        let rx = match sched.submit(None, &run) {
            Submission::Pending(rx) => rx,
            Submission::Immediate(r) => panic!("expected pending, got {r:?}"),
        };
        drain(&sched, &engine);
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let plan = ShotPlan::new(c, StateVector::new(2), 750, 7);
        let reference = engine.run_plan_range(&plan, 250..750);
        match rx.recv().unwrap() {
            Response::Ok { shots, tallies, .. } => {
                assert_eq!(shots, 500, "response reports the executed count");
                assert_eq!(tallies, reference, "ranged job diverged from the slice");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn traced_slices_tally_identically_and_record_every_shot() {
        // A sink on the scheduler must not change a single response
        // byte: the traced drain produces the same tallies, and the
        // records of all slices union to exactly the job's shot range.
        let sink = Arc::new(engine::MemorySink::new());
        let sched = Scheduler::new(SchedulerConfig {
            slice_shots: 97,
            trace_sink: Some(sink.clone()),
            ..SchedulerConfig::default()
        });
        let engine = Engine::sequential();
        let run = run_request(1_000, 7);
        let rx = match sched.submit(None, &run) {
            Submission::Pending(rx) => rx,
            Submission::Immediate(r) => panic!("expected pending, got {r:?}"),
        };
        while sched.stats().in_flight > 0 {
            let task = sched.next_slice().expect("work pending");
            let sink = task.sink.clone().expect("sink configured");
            let counts = task
                .prepared
                .run_range_traced(&engine, task.range.clone(), sink.as_ref());
            sched.complete_slice(&task.key, counts);
        }
        let tallies = match rx.recv().unwrap() {
            Response::Ok { tallies, .. } => tallies,
            other => panic!("unexpected response {other:?}"),
        };
        let untraced = Scheduler::new(SchedulerConfig {
            slice_shots: 97,
            ..SchedulerConfig::default()
        });
        let rx = match untraced.submit(None, &run) {
            Submission::Pending(rx) => rx,
            Submission::Immediate(r) => panic!("expected pending, got {r:?}"),
        };
        drain(&untraced, &engine);
        match rx.recv().unwrap() {
            Response::Ok { tallies: t, .. } => assert_eq!(t, tallies),
            other => panic!("unexpected response {other:?}"),
        }
        let records = sink.snapshot();
        assert_eq!(records.len(), 1_000);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.shot, i as u64, "slices must union to the full range");
        }
        let mut histo = Counts::new();
        for r in &records {
            *histo.entry(r.record as usize).or_insert(0) += 1;
        }
        assert_eq!(histo, tallies, "records must histogram to the response");
    }

    #[test]
    fn mismatched_shot_counts_are_rejected_at_admission() {
        let sched = Scheduler::new(SchedulerConfig::default());
        let mut run = run_request(100, 1);
        run.shot_range = Some((0, 60));
        match sched.submit(None, &run) {
            Submission::Immediate(Response::Error { error, .. }) => {
                assert!(error.contains("length"), "{error}");
            }
            _ => panic!("expected an admission error"),
        }
    }

    #[test]
    fn identical_requests_coalesce_and_then_hit_the_cache() {
        let sched = Scheduler::new(SchedulerConfig::default());
        let engine = Engine::sequential();
        let run = run_request(500, 3);
        let rx1 = match sched.submit(None, &run) {
            Submission::Pending(rx) => rx,
            other => panic!(
                "expected pending, got immediate {:?}",
                matches!(other, Submission::Immediate(_))
            ),
        };
        // Same key while in flight → coalesced waiter, no second job.
        let rx2 = match sched.submit(None, &run) {
            Submission::Pending(rx) => rx,
            _ => panic!("expected coalesced pending"),
        };
        assert_eq!(sched.stats().in_flight, 1);
        drain(&sched, &engine);
        let (r1, r2) = (rx1.recv().unwrap(), rx2.recv().unwrap());
        let tallies_of = |r: &Response| match r {
            Response::Ok {
                tallies, coalesced, ..
            } => (tallies.clone(), *coalesced),
            other => panic!("unexpected {other:?}"),
        };
        let (t1, c1) = tallies_of(&r1);
        let (t2, c2) = tallies_of(&r2);
        assert_eq!(t1, t2, "coalesced waiters must see identical tallies");
        assert!(!c1 && c2);
        // Re-submitting now is a cache hit with the same tallies.
        match sched.submit(None, &run) {
            Submission::Immediate(Response::Ok {
                cached, tallies, ..
            }) => {
                assert!(cached);
                assert_eq!(tallies, t1);
            }
            _ => panic!("expected a cache hit"),
        }
        let stats = sched.stats();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn admission_is_bounded_with_busy_and_retry_hint() {
        let sched = Scheduler::new(SchedulerConfig {
            queue_capacity: 1,
            ..SchedulerConfig::default()
        });
        // No workers running: job A stays in flight deterministically.
        let _rx = match sched.submit(None, &run_request(100, 1)) {
            Submission::Pending(rx) => rx,
            _ => panic!("A should be admitted"),
        };
        match sched.submit(None, &run_request(100, 2)) {
            Submission::Immediate(Response::Busy {
                in_flight,
                retry_after_ms,
                ..
            }) => {
                assert_eq!(in_flight, 1);
                assert!(retry_after_ms > 0);
            }
            _ => panic!("B should be rejected busy"),
        }
        assert_eq!(sched.stats().rejected_busy, 1);
        // But an *identical* request still coalesces — bounded
        // admission never rejects work it can answer for free.
        assert!(matches!(
            sched.submit(None, &run_request(100, 1)),
            Submission::Pending(_)
        ));
    }

    #[test]
    fn slicing_rotates_jobs_round_robin() {
        let sched = Scheduler::new(SchedulerConfig {
            slice_shots: 10,
            ..SchedulerConfig::default()
        });
        let _rx_a = sched.submit(None, &run_request(30, 1));
        let _rx_b = sched.submit(None, &run_request(30, 2));
        // Slices must alternate A, B, A, B, … — each job's ranges
        // advancing independently.
        let mut order = Vec::new();
        for _ in 0..6 {
            let task = sched.next_slice().unwrap();
            order.push((task.key.root_seed, task.range.clone()));
            sched.complete_slice(&task.key, Counts::new());
        }
        let seeds: Vec<u64> = order.iter().map(|(s, _)| *s).collect();
        assert_eq!(seeds, vec![1, 2, 1, 2, 1, 2], "not round-robin: {order:?}");
        assert_eq!(order[0].1, 0..10);
        assert_eq!(order[2].1, 10..20);
        assert_eq!(order[4].1, 20..30);
    }

    #[test]
    fn parse_and_capability_errors_become_error_responses() {
        let sched = Scheduler::new(SchedulerConfig::default());
        let bad_backend = RunRequest {
            backend: "qutrit".into(),
            ..run_request(10, 1)
        };
        assert!(matches!(
            sched.submit(None, &bad_backend),
            Submission::Immediate(Response::Error { .. })
        ));
        let bad_qasm = RunRequest {
            qasm: "not qasm".into(),
            ..run_request(10, 1)
        };
        match sched.submit(None, &bad_qasm) {
            Submission::Immediate(Response::Error { error, .. }) => {
                assert!(error.contains("OPENQASM"), "{error}");
            }
            _ => panic!("expected an error response"),
        }
        // Non-Clifford circuit on the stabilizer backend: typed
        // capability error.
        let mut c = Circuit::new(1, 1);
        c.t(0).measure(0, 0);
        let unsupported = RunRequest::new(to_qasm3(&c), 10, 0, "stabilizer");
        match sched.submit(None, &unsupported) {
            Submission::Immediate(Response::Error { error, .. }) => {
                assert!(error.contains("stabilizer"), "{error}");
            }
            _ => panic!("expected a capability error"),
        }
        assert_eq!(sched.stats().errors, 3);
    }

    #[test]
    fn zero_shot_jobs_complete_immediately() {
        let sched = Scheduler::new(SchedulerConfig::default());
        match sched.submit(None, &run_request(0, 1)) {
            Submission::Immediate(Response::Ok { shots, tallies, .. }) => {
                assert_eq!(shots, 0);
                assert!(tallies.is_empty());
            }
            _ => panic!("zero-shot run should settle immediately"),
        }
        assert_eq!(sched.stats().in_flight, 0);
    }

    #[test]
    fn textual_variants_share_one_cache_entry() {
        // Same circuit, different formatting/comments → same canonical
        // text → cache hit on the second request.
        let sched = Scheduler::new(SchedulerConfig::default());
        let engine = Engine::sequential();
        let run = run_request(200, 9);
        let variant = RunRequest {
            qasm: format!("// client banner\n{}", run.qasm.replace(";\n", ";\n\n")),
            ..run.clone()
        };
        let rx = match sched.submit(None, &run) {
            Submission::Pending(rx) => rx,
            _ => panic!("expected pending"),
        };
        drain(&sched, &engine);
        rx.recv().unwrap();
        assert!(matches!(
            sched.submit(None, &variant),
            Submission::Immediate(Response::Ok { cached: true, .. })
        ));
    }

    #[test]
    fn oversized_registers_are_rejected_before_allocation() {
        // A hostile register declaration must produce an error
        // response, never an allocation attempt (the stabilizer
        // tableau is O(n²) and has no width cap of its own).
        let sched = Scheduler::new(SchedulerConfig::default());
        let huge = RunRequest::new(
            "OPENQASM 3.0;\nqubit[100000000] q;\nh q[0];\n",
            10,
            0,
            "auto",
        );
        match sched.submit(None, &huge) {
            Submission::Immediate(Response::Error { error, .. }) => {
                assert!(error.contains("serving limits"), "{error}");
            }
            _ => panic!("expected an admission-limit error"),
        }
        // Classical registers beyond the 64-bit packing convention
        // are rejected the same way.
        let wide_cbits = RunRequest::new(
            "OPENQASM 3.0;\nqubit[1] q;\nbit[65] c;\nh q[0];\n",
            10,
            0,
            "auto",
        );
        assert!(matches!(
            sched.submit(None, &wide_cbits),
            Submission::Immediate(Response::Error { .. })
        ));
        assert_eq!(sched.stats().errors, 2);
    }

    #[test]
    fn complete_slice_after_shutdown_is_a_no_op() {
        // Shutdown drops jobs while their slices may still be
        // executing on workers; the late completion must be discarded
        // quietly, not panic (which would poison the scheduler lock).
        let sched = Scheduler::new(SchedulerConfig {
            slice_shots: 10,
            ..SchedulerConfig::default()
        });
        let _rx = sched.submit(None, &run_request(100, 1));
        let task = sched.next_slice().expect("slice available");
        let counts = task
            .prepared
            .run_range(&Engine::sequential(), task.range.clone());
        sched.shutdown();
        sched.complete_slice(&task.key, counts);
        // The scheduler is still usable (lock not poisoned).
        assert_eq!(sched.stats().completed, 0);
    }

    #[test]
    fn shutdown_fails_pending_waiters_and_stops_workers() {
        let sched = Scheduler::new(SchedulerConfig::default());
        let rx = match sched.submit(None, &run_request(100, 1)) {
            Submission::Pending(rx) => rx,
            _ => panic!("expected pending"),
        };
        sched.shutdown();
        assert!(rx.recv().is_err(), "waiter channel should be closed");
        assert!(sched.next_slice().is_none());
        assert!(matches!(
            sched.submit(None, &run_request(100, 2)),
            Submission::Immediate(Response::Error { .. })
        ));
    }
}
