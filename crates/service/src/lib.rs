//! # service — the deterministic simulation-serving subsystem
//!
//! Everything below this crate runs batch binaries; this crate puts a
//! long-lived process in front of the execution stack so many callers
//! can share it: a TCP server speaking **newline-delimited JSON**
//! (one request per line, one response per line — see
//! [`protocol`]), where a request carries a circuit as OpenQASM 3 text
//! (the `circuit::qasm` interchange subset) plus
//! `{shots, root_seed, backend}`, and the response carries the
//! measurement-record tallies.
//!
//! ## The serving guarantee
//!
//! Served tallies are **bit-identical** to a direct
//! `engine::Backend::sample_shots` call with the same root seed and
//! backend — cold, sliced, coalesced, or cached. This falls out of the
//! engine's determinism contract: shot `i`'s RNG stream is a pure
//! function of `(root_seed, i)`, so executing a job as scheduler
//! slices over global shot-index ranges and merging the tallies
//! reproduces the uninterrupted run exactly. A serving layer therefore
//! costs *nothing* in reproducibility: any response can be re-derived
//! offline from its request alone.
//!
//! ## Architecture
//!
//! Three layers, each its own module:
//!
//! 1. [`scheduler`] — bounded job admission with explicit backpressure
//!    (`busy` + retry hint when full), **shot-slicing** of large jobs
//!    into ranged chunks, **two-level round-robin** rotation (across
//!    client identities, then across each client's jobs) with a
//!    per-client in-flight shot quota, and **coalescing** of
//!    concurrently queued identical requests onto one execution;
//! 2. [`cache`] — a content-addressed LRU result cache keyed by the
//!    canonical circuit fingerprint + seed + shots + resolved backend,
//!    with hit/miss counters and an optional **disk spill** so a
//!    restarted server serves previously-computed results warm;
//! 3. [`server`] — the evented front end: a single `crates/reactor`
//!    I/O thread multiplexing every connection over `poll(2)`, a
//!    submitter pool for (possibly compiling) admissions, and the
//!    worker pool that replays compiled jobs (each job is compiled
//!    **once** at admission — fused statevector kernels, stabilizer
//!    plan, or once-evolved density matrix — and every slice replays
//!    it).
//!
//! ## Binaries
//!
//! * `compas-client` (this crate) — one-shot client: submit a QASM
//!   file or a built-in demo circuit, query stats, or request
//!   shutdown; retries `busy` responses with the server's back-off
//!   hint.
//! * `compas-serve` (crates/shard) — the server binary, in three
//!   roles: standalone, `--worker`, and `--coordinator` (shards each
//!   job's shot range across workers via the protocol's `shot_range`
//!   extension).
//!
//! ```no_run
//! use service::{Service, ServiceConfig};
//!
//! let handle = Service::spawn(ServiceConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```

pub mod admission;
pub mod cache;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use admission::{admit, Admitted};
pub use cache::DiskCacheConfig;
pub use protocol::{ClientRow, Op, Request, Response, RunRequest, ServiceStats, WorkerRow};
pub use scheduler::{
    PreparedJob, Responder, Scheduler, SchedulerConfig, Submission, MAX_REQUEST_CBITS,
    MAX_REQUEST_QUBITS,
};
pub use server::{decode_line, Service, ServiceConfig, ServiceHandle, MAX_LINE_BYTES};
