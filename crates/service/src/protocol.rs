//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Each request and each response is **one JSON document on one line**
//! (`\n`-terminated, no internal newlines) — trivially framable from
//! any language with a socket and a JSON parser. Serialization is
//! deterministic: object keys are emitted in schema order and tallies
//! are sorted by outcome, so a response's bytes are a pure function of
//! its content (the serving twin of the engine's bit-identical
//! tallies).
//!
//! ## Requests
//!
//! ```json
//! {"op": "run", "id": "r1", "qasm": "OPENQASM 3.0;…", "shots": 1000,
//!  "root_seed": 7, "backend": "auto"}
//! {"op": "run", "qasm": "…", "shots": 250, "root_seed": 7,
//!  "shot_range": [500, 750]}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! `op` defaults to `"run"`; `id` is an optional opaque string echoed
//! on the response; `backend` defaults to `"auto"`
//! (`engine::Backend::parse` names). `qasm`, `shots`, and `root_seed`
//! are required for runs.
//!
//! `client` is an optional identity string for fair-share accounting:
//! the scheduler round-robins shot slices *across clients* and bounds
//! each client's in-flight shots (quota). It is deliberately **not**
//! echoed on `ok` responses and is not part of the result's identity —
//! two clients submitting the same job coalesce onto one execution and
//! receive byte-identical tallies.
//!
//! `shot_range: [start, end)` restricts execution to the **global**
//! shot indices of a job rooted at `root_seed` (the sharding
//! extension): the tallies are exactly the ranged slice of the full
//! run, so merging a partition of `0..total` reproduces the
//! single-machine run bit-identically. `shots` must equal
//! `end - start` — the response's `shots` stays the executed count.
//!
//! ## Responses
//!
//! ```json
//! {"status": "ok", "id": "r1", "backend": "stabilizer", "shots": 1000,
//!  "cached": false, "coalesced": false, "tallies": {"0": 493, "3": 507}}
//! {"status": "busy", "in_flight": 32, "retry_after_ms": 650}
//! {"status": "error", "error": "qasm parse error at line 3: …"}
//! {"status": "stats", "received": 9, "completed": 4, …,
//!  "workers": [{"addr": "10.0.0.2:7878", "jobs": 31, "redispatched": 1,
//!               "heartbeat_age_ms": 120, "alive": true}]}
//! {"status": "bye"}
//! ```
//!
//! Tally keys are the packed classical registers (the
//! `Executor::sample_shots` convention) rendered in decimal. The
//! `workers` array appears on `stats` responses from a shard
//! coordinator (`crates/shard`) — one row per downstream worker; a
//! plain single-machine server omits it.

use engine::Counts;
use jsonlite::Json;

/// What a client asked the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Execute a circuit and return its tallies.
    Run(RunRequest),
    /// Report the server's counters.
    Stats,
    /// Report the server's observability snapshot (every counter,
    /// gauge, and per-stage latency histogram of its `obs::Registry`;
    /// a shard coordinator merges its workers' snapshots in).
    Metrics,
    /// Stop accepting work and shut the server down.
    Shutdown,
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Opaque client-chosen correlation id, echoed on the response.
    pub id: Option<String>,
    /// The operation.
    pub op: Op,
}

/// A simulation job: the circuit as OpenQASM 3 text plus the sampling
/// parameters. The served tallies are bit-identical to
/// `Backend::sample_shots(circuit, shots, …)` with the same root seed
/// and backend.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// The circuit, in the `circuit::qasm` interchange subset.
    pub qasm: String,
    /// Number of shots to execute. With a [`RunRequest::shot_range`],
    /// this must equal the range's length.
    pub shots: u64,
    /// Root seed of the job's deterministic RNG streams.
    pub root_seed: u64,
    /// Backend name (`engine::Backend::parse` convention).
    pub backend: String,
    /// Optional `[start, end)` of **global** shot indices to execute —
    /// the sharding extension. `None` runs `0..shots`. The tallies of a
    /// ranged run are exactly the corresponding slice of the full run,
    /// so a coordinator can partition `0..total` across workers and
    /// merge.
    pub shot_range: Option<(u64, u64)>,
    /// Optional client identity for fair-share scheduling and quota
    /// accounting. `None` joins the anonymous pool. Never part of the
    /// result identity — responses are byte-identical whatever the
    /// client string.
    pub client: Option<String>,
}

impl RunRequest {
    /// A full (un-ranged) run request.
    pub fn new(
        qasm: impl Into<String>,
        shots: u64,
        root_seed: u64,
        backend: impl Into<String>,
    ) -> RunRequest {
        RunRequest {
            qasm: qasm.into(),
            shots,
            root_seed,
            backend: backend.into(),
            shot_range: None,
            client: None,
        }
    }

    /// The same job tagged with a client identity (fair-share
    /// scheduling key; see [`RunRequest::client`]).
    pub fn with_client(mut self, client: impl Into<String>) -> RunRequest {
        self.client = Some(client.into());
        self
    }

    /// The same job restricted to the global shot indices
    /// `start..end` (sets `shots` to the range length, as the wire
    /// contract requires).
    pub fn with_shot_range(mut self, start: u64, end: u64) -> RunRequest {
        self.shots = end.saturating_sub(start);
        self.shot_range = Some((start, end));
        self
    }
}

impl Request {
    /// Builds a run request.
    pub fn run(id: Option<String>, run: RunRequest) -> Request {
        Request {
            id,
            op: Op::Run(run),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        if doc.as_obj().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("\"id\" must be a string")?.to_string()),
        };
        let op_name = match doc.get("op") {
            None => "run",
            Some(v) => v.as_str().ok_or("\"op\" must be a string")?,
        };
        let op = match op_name {
            "run" => {
                let qasm = doc
                    .get("qasm")
                    .ok_or("run request missing \"qasm\"")?
                    .as_str()
                    .ok_or("\"qasm\" must be a string")?
                    .to_string();
                let shots = doc
                    .get("shots")
                    .ok_or("run request missing \"shots\"")?
                    .as_u64()
                    .ok_or("\"shots\" must be a non-negative integer")?;
                let root_seed = doc
                    .get("root_seed")
                    .ok_or("run request missing \"root_seed\"")?
                    .as_u64()
                    .ok_or("\"root_seed\" must be a non-negative integer")?;
                let backend = match doc.get("backend") {
                    None => "auto".to_string(),
                    Some(v) => v
                        .as_str()
                        .ok_or("\"backend\" must be a string")?
                        .to_string(),
                };
                let shot_range = match doc.get("shot_range") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let items = v
                            .as_arr()
                            .filter(|a| a.len() == 2)
                            .ok_or("\"shot_range\" must be a [start, end] pair")?;
                        let bound = |j: &Json| {
                            j.as_u64()
                                .ok_or("\"shot_range\" bounds must be non-negative integers")
                        };
                        let (start, end) = (bound(&items[0])?, bound(&items[1])?);
                        if start > end {
                            return Err(format!("\"shot_range\" is reversed: [{start}, {end}]"));
                        }
                        Some((start, end))
                    }
                };
                let client = match doc.get("client") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().ok_or("\"client\" must be a string")?.to_string()),
                };
                Op::Run(RunRequest {
                    qasm,
                    shots,
                    root_seed,
                    backend,
                    shot_range,
                    client,
                })
            }
            "stats" => Op::Stats,
            "metrics" => Op::Metrics,
            "shutdown" => Op::Shutdown,
            other => return Err(format!("unknown op \"{other}\"")),
        };
        Ok(Request { id, op })
    }

    /// Encodes the request as one wire line (`\n`-terminated).
    pub fn to_line(&self) -> String {
        let mut members: Vec<(String, Json)> = Vec::new();
        let op = match &self.op {
            Op::Run(_) => "run",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        };
        members.push(("op".into(), Json::str(op)));
        if let Some(id) = &self.id {
            members.push(("id".into(), Json::str(id)));
        }
        if let Op::Run(run) = &self.op {
            members.push(("qasm".into(), Json::str(&run.qasm)));
            members.push(("shots".into(), Json::from_u64(run.shots)));
            members.push(("root_seed".into(), Json::from_u64(run.root_seed)));
            members.push(("backend".into(), Json::str(&run.backend)));
            if let Some((start, end)) = run.shot_range {
                members.push((
                    "shot_range".into(),
                    Json::Arr(vec![Json::from_u64(start), Json::from_u64(end)]),
                ));
            }
            if let Some(client) = &run.client {
                members.push(("client".into(), Json::str(client)));
            }
        }
        let mut line = Json::Obj(members).to_compact();
        line.push('\n');
        line
    }
}

/// The server's counters, as reported by a `stats` request. Counter
/// fields accumulate since startup; `in_flight` and `cache_entries`
/// are gauges read at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Run requests received (including malformed request lines;
    /// `stats`/`shutdown` admin ops are not counted).
    pub received: u64,
    /// Jobs executed to completion.
    pub completed: u64,
    /// Responses served straight from the result cache.
    pub cache_hits: u64,
    /// Admitted executions (cache misses).
    pub cache_misses: u64,
    /// Requests attached to an identical in-flight job instead of
    /// executing again.
    pub coalesced: u64,
    /// Requests rejected with `busy` because the job queue was full.
    pub rejected_busy: u64,
    /// Requests rejected with `busy` because the client's in-flight
    /// shot quota was exhausted.
    pub rejected_quota: u64,
    /// Requests rejected with `busy` because the client's shots-per-
    /// second token bucket was exhausted.
    pub rejected_rate: u64,
    /// Malformed or unexecutable requests answered with `error`.
    pub errors: u64,
    /// Jobs currently admitted (queued or executing) — gauge.
    pub in_flight: u64,
    /// Entries currently resident in the in-memory result cache —
    /// gauge.
    pub cache_entries: u64,
    /// Entries currently persisted in the on-disk result cache —
    /// gauge (0 when disk spill is off).
    pub cache_disk_entries: u64,
    /// Reactor gauge: connections currently open.
    pub open_connections: u64,
    /// Reactor gauge: open connections with nothing buffered and no
    /// request in flight.
    pub idle_connections: u64,
    /// Reactor gauge: connections holding a partial input line.
    pub read_blocked: u64,
    /// Reactor gauge: connections with unflushed output (slow
    /// readers).
    pub write_blocked: u64,
}

impl ServiceStats {
    /// The schema's `(name, value)` pairs, in wire order. Public so
    /// clients can render the counters without hard-coding the schema.
    pub fn fields(&self) -> [(&'static str, u64); 16] {
        [
            ("received", self.received),
            ("completed", self.completed),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("coalesced", self.coalesced),
            ("rejected_busy", self.rejected_busy),
            ("rejected_quota", self.rejected_quota),
            ("rejected_rate", self.rejected_rate),
            ("errors", self.errors),
            ("in_flight", self.in_flight),
            ("cache_entries", self.cache_entries),
            ("cache_disk_entries", self.cache_disk_entries),
            ("open_connections", self.open_connections),
            ("idle_connections", self.idle_connections),
            ("read_blocked", self.read_blocked),
            ("write_blocked", self.write_blocked),
        ]
    }
}

/// Sentinel `heartbeat_age_ms` for a worker that has never answered a
/// health probe (2⁵³ — the largest integer the wire's f64-backed
/// numbers carry exactly, far beyond any real heartbeat age).
pub const HEARTBEAT_NEVER_MS: u64 = 1 << 53;

/// One downstream worker's row in a shard coordinator's `stats`
/// response: identity, serving counters, and health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerRow {
    /// The worker's wire address (`host:port`).
    pub addr: String,
    /// Ranged sub-requests this worker completed successfully.
    pub jobs: u64,
    /// Ranges this worker lost (dispatched to it, then re-dispatched to
    /// a survivor after failure or timeout).
    pub redispatched: u64,
    /// Milliseconds since the last successful health probe
    /// ([`HEARTBEAT_NEVER_MS`] when no probe has ever succeeded; ages
    /// are clamped to that sentinel so the field is always wire-exact).
    pub heartbeat_age_ms: u64,
    /// Whether the coordinator currently considers the worker alive.
    pub alive: bool,
}

impl WorkerRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("addr", Json::str(&self.addr)),
            ("jobs", Json::from_u64(self.jobs)),
            ("redispatched", Json::from_u64(self.redispatched)),
            (
                "heartbeat_age_ms",
                Json::from_u64(self.heartbeat_age_ms.min(HEARTBEAT_NEVER_MS)),
            ),
            ("alive", Json::Bool(self.alive)),
        ])
    }

    fn from_json(v: &Json) -> Result<WorkerRow, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("worker row missing numeric \"{key}\""))
        };
        Ok(WorkerRow {
            addr: v
                .get("addr")
                .and_then(Json::as_str)
                .ok_or("worker row missing \"addr\"")?
                .to_string(),
            jobs: num("jobs")?,
            redispatched: num("redispatched")?,
            heartbeat_age_ms: num("heartbeat_age_ms")?,
            alive: v
                .get("alive")
                .and_then(Json::as_bool)
                .ok_or("worker row missing \"alive\"")?,
        })
    }
}

/// One client's row in a `stats` response: quota counters for a
/// fair-share identity the scheduler has seen. Rows are sorted by
/// client name so the response bytes are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientRow {
    /// The client identity (`""` is the anonymous pool).
    pub client: String,
    /// Jobs this client submitted that were admitted for execution.
    pub admitted: u64,
    /// Admitted jobs that ran to completion.
    pub completed: u64,
    /// Requests coalesced onto another job (not charged to quota).
    pub coalesced: u64,
    /// Requests rejected because the client's in-flight shot quota was
    /// exhausted.
    pub rejected_quota: u64,
    /// Requests rejected because the client's shots-per-second token
    /// bucket was exhausted.
    pub rejected_rate: u64,
    /// Shots currently admitted and not yet completed — the quantity
    /// the quota bounds. Gauge.
    pub inflight_shots: u64,
}

impl ClientRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("client", Json::str(&self.client)),
            ("admitted", Json::from_u64(self.admitted)),
            ("completed", Json::from_u64(self.completed)),
            ("coalesced", Json::from_u64(self.coalesced)),
            ("rejected_quota", Json::from_u64(self.rejected_quota)),
            ("rejected_rate", Json::from_u64(self.rejected_rate)),
            ("inflight_shots", Json::from_u64(self.inflight_shots)),
        ])
    }

    fn from_json(v: &Json) -> Result<ClientRow, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("client row missing numeric \"{key}\""))
        };
        Ok(ClientRow {
            client: v
                .get("client")
                .and_then(Json::as_str)
                .ok_or("client row missing \"client\"")?
                .to_string(),
            admitted: num("admitted")?,
            completed: num("completed")?,
            coalesced: num("coalesced")?,
            rejected_quota: num("rejected_quota")?,
            rejected_rate: num("rejected_rate")?,
            inflight_shots: num("inflight_shots")?,
        })
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job's tallies — bit-identical to a direct
    /// `Backend::sample_shots` call with the same root seed/backend.
    Ok {
        /// Echo of the request id.
        id: Option<String>,
        /// The backend that executed (after `Auto` routing).
        backend: String,
        /// Shots executed (tally values sum to this).
        shots: u64,
        /// Whether the result came from the content-addressed cache.
        cached: bool,
        /// Whether this request was coalesced onto an identical
        /// in-flight job instead of executing separately.
        coalesced: bool,
        /// Histogram of packed classical registers.
        tallies: Counts,
    },
    /// The job queue is full; retry after the hinted delay.
    Busy {
        /// Echo of the request id.
        id: Option<String>,
        /// Jobs admitted when the request was rejected.
        in_flight: u64,
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The request could not be executed.
    Error {
        /// Echo of the request id.
        id: Option<String>,
        /// What went wrong.
        error: String,
    },
    /// Counter snapshot.
    Stats {
        /// Echo of the request id.
        id: Option<String>,
        /// The counters.
        stats: ServiceStats,
        /// Per-worker rows — non-empty only on responses from a shard
        /// coordinator (omitted from the wire when empty).
        workers: Vec<WorkerRow>,
        /// Per-client quota rows, sorted by client name — non-empty
        /// once any run request has been admitted (omitted from the
        /// wire when empty).
        clients: Vec<ClientRow>,
    },
    /// Observability snapshot: every counter, gauge, and per-stage
    /// latency histogram of the server's `obs::Registry`. A shard
    /// coordinator answers with its workers' snapshots merged in.
    Metrics {
        /// Echo of the request id.
        id: Option<String>,
        /// The registry snapshot.
        snapshot: obs::Snapshot,
    },
    /// Acknowledgement of a shutdown request (the last line the server
    /// writes on that connection).
    Bye {
        /// Echo of the request id.
        id: Option<String>,
    },
}

impl Response {
    /// Encodes the response as one wire line (`\n`-terminated).
    pub fn to_line(&self) -> String {
        let mut members: Vec<(String, Json)> = Vec::new();
        let push_id = |members: &mut Vec<(String, Json)>, id: &Option<String>| {
            if let Some(id) = id {
                members.push(("id".into(), Json::str(id)));
            }
        };
        match self {
            Response::Ok {
                id,
                backend,
                shots,
                cached,
                coalesced,
                tallies,
            } => {
                members.push(("status".into(), Json::str("ok")));
                push_id(&mut members, id);
                members.push(("backend".into(), Json::str(backend)));
                members.push(("shots".into(), Json::from_u64(*shots)));
                members.push(("cached".into(), Json::Bool(*cached)));
                members.push(("coalesced".into(), Json::Bool(*coalesced)));
                // Sort by outcome so the bytes are deterministic.
                let mut rows: Vec<(usize, usize)> = tallies.iter().map(|(&k, &v)| (k, v)).collect();
                rows.sort_unstable();
                members.push((
                    "tallies".into(),
                    Json::Obj(
                        rows.into_iter()
                            .map(|(k, v)| (k.to_string(), Json::from_usize(v)))
                            .collect(),
                    ),
                ));
            }
            Response::Busy {
                id,
                in_flight,
                retry_after_ms,
            } => {
                members.push(("status".into(), Json::str("busy")));
                push_id(&mut members, id);
                members.push(("in_flight".into(), Json::from_u64(*in_flight)));
                members.push(("retry_after_ms".into(), Json::from_u64(*retry_after_ms)));
            }
            Response::Error { id, error } => {
                members.push(("status".into(), Json::str("error")));
                push_id(&mut members, id);
                members.push(("error".into(), Json::str(error)));
            }
            Response::Stats {
                id,
                stats,
                workers,
                clients,
            } => {
                members.push(("status".into(), Json::str("stats")));
                push_id(&mut members, id);
                for (name, value) in stats.fields() {
                    members.push((name.into(), Json::from_u64(value)));
                }
                if !workers.is_empty() {
                    members.push((
                        "workers".into(),
                        Json::Arr(workers.iter().map(WorkerRow::to_json).collect()),
                    ));
                }
                if !clients.is_empty() {
                    members.push((
                        "clients".into(),
                        Json::Arr(clients.iter().map(ClientRow::to_json).collect()),
                    ));
                }
            }
            Response::Metrics { id, snapshot } => {
                members.push(("status".into(), Json::str("metrics")));
                push_id(&mut members, id);
                members.push(("metrics".into(), snapshot.to_json()));
            }
            Response::Bye { id } => {
                members.push(("status".into(), Json::str("bye")));
                push_id(&mut members, id);
            }
        }
        let mut line = Json::Obj(members).to_compact();
        line.push('\n');
        line
    }

    /// Decodes one response line (the client side of the protocol).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn from_line(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("\"id\" must be a string")?.to_string()),
        };
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response missing \"status\"")?;
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing numeric \"{key}\""))
        };
        match status {
            "ok" => {
                let tallies = doc
                    .get("tallies")
                    .and_then(Json::as_obj)
                    .ok_or("ok response missing \"tallies\"")?
                    .iter()
                    .map(|(k, v)| {
                        let outcome: usize = k
                            .parse()
                            .map_err(|_| format!("non-numeric tally key \"{k}\""))?;
                        let count = v
                            .as_u64()
                            .ok_or_else(|| format!("non-numeric tally for \"{k}\""))?;
                        Ok((outcome, count as usize))
                    })
                    .collect::<Result<Counts, String>>()?;
                Ok(Response::Ok {
                    id,
                    backend: doc
                        .get("backend")
                        .and_then(Json::as_str)
                        .ok_or("ok response missing \"backend\"")?
                        .to_string(),
                    shots: num("shots")?,
                    cached: doc
                        .get("cached")
                        .and_then(Json::as_bool)
                        .ok_or("ok response missing \"cached\"")?,
                    coalesced: doc
                        .get("coalesced")
                        .and_then(Json::as_bool)
                        .ok_or("ok response missing \"coalesced\"")?,
                    tallies,
                })
            }
            "busy" => Ok(Response::Busy {
                id,
                in_flight: num("in_flight")?,
                retry_after_ms: num("retry_after_ms")?,
            }),
            "error" => Ok(Response::Error {
                id,
                error: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or("error response missing \"error\"")?
                    .to_string(),
            }),
            "stats" => Ok(Response::Stats {
                id,
                stats: ServiceStats {
                    received: num("received")?,
                    completed: num("completed")?,
                    cache_hits: num("cache_hits")?,
                    cache_misses: num("cache_misses")?,
                    coalesced: num("coalesced")?,
                    rejected_busy: num("rejected_busy")?,
                    rejected_quota: num("rejected_quota")?,
                    rejected_rate: num("rejected_rate")?,
                    errors: num("errors")?,
                    in_flight: num("in_flight")?,
                    cache_entries: num("cache_entries")?,
                    cache_disk_entries: num("cache_disk_entries")?,
                    open_connections: num("open_connections")?,
                    idle_connections: num("idle_connections")?,
                    read_blocked: num("read_blocked")?,
                    write_blocked: num("write_blocked")?,
                },
                workers: match doc.get("workers") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or("\"workers\" must be an array")?
                        .iter()
                        .map(WorkerRow::from_json)
                        .collect::<Result<Vec<_>, String>>()?,
                },
                clients: match doc.get("clients") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or("\"clients\" must be an array")?
                        .iter()
                        .map(ClientRow::from_json)
                        .collect::<Result<Vec<_>, String>>()?,
                },
            }),
            "metrics" => Ok(Response::Metrics {
                id,
                snapshot: obs::Snapshot::from_json(
                    doc.get("metrics")
                        .ok_or("metrics response missing \"metrics\"")?,
                )?,
            }),
            "bye" => Ok(Response::Bye { id }),
            other => Err(format!("unknown status \"{other}\"")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let req = Request::run(
            Some("r1".into()),
            RunRequest::new("OPENQASM 3.0;\nqubit[1] q;\nh q[0];\n", 500, 7, "auto"),
        );
        let line = req.to_line();
        assert!(line.ends_with('\n') && !line.trim_end().contains('\n'));
        assert_eq!(Request::from_line(&line).unwrap(), req);
        // A full request carries no shot_range field on the wire.
        assert!(!line.contains("shot_range"));
    }

    #[test]
    fn ranged_run_requests_round_trip() {
        let req = Request::run(
            None,
            RunRequest::new("x", 1_000, 7, "sv").with_shot_range(500, 750),
        );
        let Op::Run(run) = &req.op else {
            unreachable!()
        };
        assert_eq!(
            run.shots, 250,
            "with_shot_range must pin shots to the length"
        );
        let line = req.to_line();
        assert!(line.contains("\"shot_range\":[500,750]"), "{line}");
        assert_eq!(Request::from_line(&line).unwrap(), req);
    }

    #[test]
    fn malformed_shot_ranges_are_rejected() {
        let base = r#""qasm": "x", "shots": 1, "root_seed": 0"#;
        for (range, needle) in [
            ("[10, 3]", "reversed"),
            ("[1]", "pair"),
            ("[1, 2, 3]", "pair"),
            ("\"0..5\"", "pair"),
            ("[-1, 5]", "non-negative"),
            ("[0, 1.5]", "non-negative"),
        ] {
            let line = format!("{{{base}, \"shot_range\": {range}}}");
            let err = Request::from_line(&line).unwrap_err();
            assert!(err.contains(needle), "{range}: {err}");
        }
    }

    #[test]
    fn op_defaults_to_run_and_backend_to_auto() {
        let req = Request::from_line(r#"{"qasm": "x", "shots": 1, "root_seed": 0}"#).unwrap();
        match req.op {
            Op::Run(run) => assert_eq!(run.backend, "auto"),
            other => panic!("unexpected op {other:?}"),
        }
        assert_eq!(req.id, None);
    }

    #[test]
    fn admin_requests_round_trip() {
        for req in [
            Request {
                id: None,
                op: Op::Stats,
            },
            Request {
                id: Some("s".into()),
                op: Op::Shutdown,
            },
        ] {
            assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("", "json error"),
            ("[]", "must be a JSON object"),
            ("{\"op\": \"launch\"}", "unknown op"),
            ("{\"op\": \"run\"}", "missing \"qasm\""),
            (r#"{"qasm": "x", "shots": -1, "root_seed": 0}"#, "shots"),
            (r#"{"qasm": "x", "shots": 1.5, "root_seed": 0}"#, "shots"),
        ] {
            let err = Request::from_line(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn responses_round_trip_and_sort_tallies() {
        let tallies: Counts = [(3usize, 507usize), (0, 493)].into_iter().collect();
        let ok = Response::Ok {
            id: Some("r1".into()),
            backend: "stabilizer".into(),
            shots: 1000,
            cached: false,
            coalesced: true,
            tallies,
        };
        let line = ok.to_line();
        // Keys sorted numerically → deterministic bytes.
        assert!(line.find("\"0\"").unwrap() < line.find("\"3\"").unwrap());
        assert_eq!(Response::from_line(&line).unwrap(), ok);

        let busy = Response::Busy {
            id: None,
            in_flight: 32,
            retry_after_ms: 650,
        };
        assert_eq!(Response::from_line(&busy.to_line()).unwrap(), busy);

        let stats = Response::Stats {
            id: None,
            stats: ServiceStats {
                received: 9,
                completed: 4,
                cache_hits: 2,
                cache_misses: 4,
                coalesced: 1,
                rejected_busy: 1,
                rejected_quota: 2,
                rejected_rate: 3,
                errors: 1,
                in_flight: 0,
                cache_entries: 4,
                cache_disk_entries: 6,
                open_connections: 3,
                idle_connections: 2,
                read_blocked: 0,
                write_blocked: 1,
            },
            workers: Vec::new(),
            clients: Vec::new(),
        };
        let line = stats.to_line();
        assert!(!line.contains("workers"), "empty rows must be omitted");
        assert!(!line.contains("clients"), "empty rows must be omitted");
        assert_eq!(Response::from_line(&line).unwrap(), stats);

        let bye = Response::Bye {
            id: Some("x".into()),
        };
        assert_eq!(Response::from_line(&bye.to_line()).unwrap(), bye);
    }

    #[test]
    fn coordinator_stats_carry_per_worker_rows() {
        let stats = Response::Stats {
            id: Some("s".into()),
            stats: ServiceStats::default(),
            workers: vec![
                WorkerRow {
                    addr: "10.0.0.2:7878".into(),
                    jobs: 31,
                    redispatched: 1,
                    heartbeat_age_ms: 120,
                    alive: true,
                },
                WorkerRow {
                    addr: "10.0.0.3:7878".into(),
                    jobs: 12,
                    redispatched: 0,
                    heartbeat_age_ms: HEARTBEAT_NEVER_MS,
                    alive: false,
                },
            ],
            clients: Vec::new(),
        };
        let line = stats.to_line();
        assert!(
            line.contains("\"workers\":[{\"addr\":\"10.0.0.2:7878\""),
            "{line}"
        );
        assert_eq!(Response::from_line(&line).unwrap(), stats);
    }

    #[test]
    fn client_identities_ride_run_requests_and_stats_rows() {
        // `client` rides the request wire format…
        let req = Request::run(
            None,
            RunRequest::new("x", 100, 7, "auto").with_client("tenant-a"),
        );
        let line = req.to_line();
        assert!(line.contains("\"client\":\"tenant-a\""), "{line}");
        assert_eq!(Request::from_line(&line).unwrap(), req);
        // …is absent when unset…
        let anon = Request::run(None, RunRequest::new("x", 100, 7, "auto"));
        assert!(!anon.to_line().contains("client"));
        assert_eq!(Request::from_line(&anon.to_line()).unwrap(), anon);
        // …and per-client quota rows ride stats responses.
        let stats = Response::Stats {
            id: None,
            stats: ServiceStats::default(),
            workers: Vec::new(),
            clients: vec![
                ClientRow {
                    client: String::new(),
                    admitted: 2,
                    completed: 2,
                    coalesced: 0,
                    rejected_quota: 0,
                    rejected_rate: 0,
                    inflight_shots: 0,
                },
                ClientRow {
                    client: "tenant-a".into(),
                    admitted: 5,
                    completed: 3,
                    coalesced: 1,
                    rejected_quota: 4,
                    rejected_rate: 2,
                    inflight_shots: 2048,
                },
            ],
        };
        let line = stats.to_line();
        assert!(
            line.contains("\"clients\":[{\"client\":\"\""),
            "rows must be sorted by client name: {line}"
        );
        assert_eq!(Response::from_line(&line).unwrap(), stats);
    }

    #[test]
    fn metrics_requests_and_snapshots_round_trip() {
        // The request side is an op name like `stats`…
        let req = Request {
            id: Some("m1".into()),
            op: Op::Metrics,
        };
        let line = req.to_line();
        assert!(line.contains("\"op\":\"metrics\""), "{line}");
        assert_eq!(Request::from_line(&line).unwrap(), req);
        // …and the response carries a full registry snapshot.
        let reg = obs::Registry::new();
        reg.counter("cache.hits").add(7);
        reg.gauge("reactor.open").set(3);
        let h = reg.histo("stage.execute");
        h.record(900);
        h.record(70_000);
        let resp = Response::Metrics {
            id: Some("m1".into()),
            snapshot: reg.snapshot(),
        };
        let line = resp.to_line();
        assert!(line.contains("\"status\":\"metrics\""), "{line}");
        assert!(line.contains("\"cache.hits\":7"), "{line}");
        let back = Response::from_line(&line).unwrap();
        assert_eq!(back, resp);
        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn ok_lines_are_byte_deterministic() {
        let tallies: Counts = (0..16).map(|k| (k, k + 1)).collect();
        let a = Response::Ok {
            id: None,
            backend: "statevector".into(),
            shots: 136,
            cached: false,
            coalesced: false,
            tallies: tallies.clone(),
        };
        let b = Response::Ok {
            id: None,
            backend: "statevector".into(),
            shots: 136,
            cached: false,
            coalesced: false,
            tallies,
        };
        assert_eq!(a.to_line(), b.to_line());
    }
}
