//! `compas-client` — a one-shot client for `compas-serve`.
//!
//! ```text
//! compas-client [--addr HOST:PORT] --demo bell --shots 1000 --seed 7
//! compas-client --qasm circuit.qasm --shots 500 --seed 1 --backend sv
//! compas-client --client-id tenant-a --concurrent 4 --demo ghz8
//! compas-client --stats
//! compas-client --metrics
//! compas-client --shutdown
//! ```
//!
//! Submits one request (repeated `--repeat` times on the same
//! connection), prints each response line to stdout, and exits 0 on
//! `ok`/`stats`/`bye`, 3 on `busy`, 2 on `error`, 1 on I/O failure.
//! `--demo` builds a circuit locally and ships it as QASM: `bell`, or
//! `ghzN` (an N-qubit GHZ chain, e.g. `ghz8`).
//!
//! A `busy` response is retried up to `--retries` times (default 4),
//! sleeping the server's `retry_after_ms` hint (capped at 1 s) before
//! each resend — the server knows its own load, so the hint *is* the
//! backoff schedule. Exit code 3 means the budget ran out with the
//! server still busy.
//!
//! `--client-id NAME` tags run requests with a fair-share identity:
//! the server schedules round-robin *between* identities and may bound
//! each identity's in-flight shots (`compas-serve --quota-shots`).
//! `--concurrent N` opens N connections from this one process and
//! drives the full `--repeat` sequence on each, all under the same
//! identity — the shape that exercises a per-client quota. Request ids
//! are suffixed `-tK` per connection so responses stay correlatable;
//! the process exit code is the worst across connections.
//!
//! `--stats` prints the raw stats line to stdout and, additionally, a
//! human-readable rendering (counters, per-client quota rows, worker
//! rows) to stderr — stdout stays machine-diffable.
//!
//! `--metrics` mirrors that split for the observability snapshot: the
//! raw `metrics` response line (stable jsonlite schema) to stdout, and
//! a human table — counters, gauges, per-stage latency histograms with
//! count/mean/p50/p90/p99, retained slow requests — to stderr. Against
//! a coordinator the snapshot is topology-wide (worker histograms
//! merged in).
//!
//! `--trace-out FILE` appends every raw response line received —
//! including `busy` lines consumed by the retry loop — to `FILE`
//! verbatim, so served-bytes regressions are diffable (`diff old new`)
//! without rebuilding a capture harness. With `--concurrent` the file
//! is shared (whole lines, interleaving unspecified).

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use service::{Op, Request, Response, RunRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::{Arc, Mutex};

fn usage() -> ! {
    eprintln!(
        "usage: compas-client [--addr HOST:PORT] [--id ID] [--client-id NAME] [--repeat K]\n\
         \x20  [--concurrent N] [--retries K] [--trace-out FILE]\n\
         \x20  (--demo bell|ghzN | --qasm FILE) [--shots N] [--seed N] [--backend NAME]\n\
         \x20  | --stats | --metrics | --shutdown"
    );
    exit(2);
}

fn demo_circuit(name: &str) -> Option<Circuit> {
    if name == "bell" {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        return Some(c);
    }
    let n: usize = name.strip_prefix("ghz")?.parse().ok()?;
    if !(1..=26).contains(&n) {
        return None;
    }
    let mut c = Circuit::new(n, n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    for q in 0..n {
        c.measure(q, q);
    }
    Some(c)
}

struct Args {
    addr: String,
    id: Option<String>,
    repeat: u64,
    concurrent: u64,
    retries: u64,
    trace_out: Option<String>,
    op: Op,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut id = None;
    let mut client_id: Option<String> = None;
    let mut repeat = 1u64;
    let mut concurrent = 1u64;
    let mut retries = 4u64;
    let mut trace_out: Option<String> = None;
    let mut qasm: Option<String> = None;
    let mut shots = 1024u64;
    let mut seed = 0u64;
    let mut backend = "auto".to_string();
    let mut admin: Option<Op> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = value(&args, i);
                i += 2;
            }
            "--id" => {
                id = Some(value(&args, i));
                i += 2;
            }
            "--client-id" => {
                client_id = Some(value(&args, i));
                i += 2;
            }
            "--repeat" => {
                repeat = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--concurrent" => {
                concurrent = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--retries" => {
                retries = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(value(&args, i));
                i += 2;
            }
            "--demo" => {
                let name = value(&args, i);
                let circuit = demo_circuit(&name).unwrap_or_else(|| {
                    eprintln!("unknown demo circuit: {name}");
                    usage()
                });
                qasm = Some(to_qasm3(&circuit));
                i += 2;
            }
            "--qasm" => {
                let path = value(&args, i);
                qasm = Some(std::fs::read_to_string(&path).unwrap_or_else(|err| {
                    eprintln!("cannot read {path}: {err}");
                    exit(1);
                }));
                i += 2;
            }
            "--shots" => {
                shots = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                seed = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--backend" => {
                backend = value(&args, i);
                i += 2;
            }
            "--stats" => {
                admin = Some(Op::Stats);
                i += 1;
            }
            "--metrics" => {
                admin = Some(Op::Metrics);
                i += 1;
            }
            "--shutdown" => {
                admin = Some(Op::Shutdown);
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let op = match (admin, qasm) {
        (Some(op), None) => op,
        (None, Some(qasm)) => {
            let mut run = RunRequest::new(qasm, shots, seed, backend);
            if let Some(client) = client_id {
                run = run.with_client(client);
            }
            Op::Run(run)
        }
        _ => usage(),
    };
    if concurrent > 1 && !matches!(op, Op::Run(_)) {
        eprintln!("--concurrent only applies to run requests");
        usage();
    }
    Args {
        addr,
        id,
        repeat,
        concurrent,
        retries,
        trace_out,
        op,
    }
}

/// Renders a stats response for humans, to stderr (stdout carries the
/// raw wire line, so scripts keep a machine-diffable view).
fn render_stats(response: &Response) {
    let Response::Stats {
        stats,
        workers,
        clients,
        ..
    } = response
    else {
        return;
    };
    let mut out = String::new();
    out.push_str("server counters:\n");
    for (name, value) in stats.fields() {
        out.push_str(&format!("  {name:<22} {value}\n"));
    }
    if !clients.is_empty() {
        out.push_str("clients (admitted/completed/coalesced/rejected_quota/inflight_shots):\n");
        for row in clients {
            let name = if row.client.is_empty() {
                "(anonymous)"
            } else {
                &row.client
            };
            out.push_str(&format!(
                "  {name:<22} {}/{}/{}/{}/{}\n",
                row.admitted, row.completed, row.coalesced, row.rejected_quota, row.inflight_shots
            ));
        }
    }
    if !workers.is_empty() {
        out.push_str("workers (jobs/redispatched/heartbeat_age_ms/alive):\n");
        for row in workers {
            out.push_str(&format!(
                "  {:<22} {}/{}/{}/{}\n",
                row.addr, row.jobs, row.redispatched, row.heartbeat_age_ms, row.alive
            ));
        }
    }
    eprint!("{out}");
}

/// Renders a metrics snapshot for humans, to stderr (stdout carries
/// the raw wire line, mirroring `--stats`).
fn render_metrics(response: &Response) {
    let Response::Metrics { snapshot, .. } = response else {
        return;
    };
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<34} {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name:<34} {value}\n"));
        }
    }
    if !snapshot.histos.is_empty() {
        out.push_str("histograms (count | mean | p50 | p90 | p99):\n");
        for (name, h) in &snapshot.histos {
            out.push_str(&format!(
                "  {name:<34} {} | {} | {} | {} | {}\n",
                h.count,
                fmt_ns(h.mean() as u64),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.90)),
                fmt_ns(h.quantile(0.99)),
            ));
        }
    }
    if !snapshot.slow.is_empty() {
        out.push_str("slow requests:\n");
        for trace in &snapshot.slow {
            let stages: Vec<String> = trace
                .stages
                .iter()
                .map(|(stage, ns)| format!("{stage}={}", fmt_ns(*ns)))
                .collect();
            out.push_str(&format!(
                "  {:<34} {} ({})\n",
                trace.label,
                fmt_ns(trace.total_ns),
                stages.join(", ")
            ));
        }
    }
    eprint!("{out}");
}

/// Nanoseconds as a compact human-readable duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A shared, line-atomic trace sink (`--trace-out`).
#[derive(Clone)]
struct Trace(Option<Arc<Mutex<std::fs::File>>>);

impl Trace {
    fn open(path: Option<&String>) -> Trace {
        Trace(path.map(|path| {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|err| {
                    eprintln!("compas-client: cannot open {path}: {err}");
                    exit(1);
                });
            Arc::new(Mutex::new(file))
        }))
    }

    fn dump(&self, line: &str) {
        if let Some(file) = &self.0 {
            let mut file = file.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if file.write_all(line.as_bytes()).is_err() {
                eprintln!("compas-client: cannot write trace file");
                exit(1);
            }
        }
    }
}

/// One connection's full request sequence. Returns the worst exit code
/// observed (0 ok, 2 error, 3 busy-budget-exhausted), or exits the
/// process outright on I/O failure, matching single-connection
/// behaviour.
fn run_session(args: &Args, thread: Option<u64>, trace: &Trace) -> i32 {
    let stream = TcpStream::connect(&args.addr).unwrap_or_else(|err| {
        eprintln!("compas-client: cannot connect to {}: {err}", args.addr);
        exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|err| {
        eprintln!("compas-client: {err}");
        exit(1);
    }));
    let mut writer = stream;
    // With --concurrent, suffix the request id per connection so the
    // interleaved stdout lines stay correlatable.
    let id = match (&args.id, thread) {
        (Some(id), Some(t)) => Some(format!("{id}-t{t}")),
        (id, _) => id.clone(),
    };
    let mut worst = 0i32;
    for _ in 0..args.repeat.max(1) {
        let request = Request {
            id: id.clone(),
            op: args.op.clone(),
        };
        // Bounded retry on `busy`: the response carries the server's
        // own back-off hint, so honoring it (capped) is strictly
        // better than a client-invented schedule.
        let mut budget = args.retries;
        let code = loop {
            if writer.write_all(request.to_line().as_bytes()).is_err() {
                eprintln!("compas-client: connection lost while sending");
                exit(1);
            }
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    eprintln!("compas-client: server closed the connection");
                    exit(1);
                }
                Ok(_) => {}
            }
            trace.dump(&line);
            match Response::from_line(&line) {
                Ok(Response::Busy { retry_after_ms, .. }) if budget > 0 => {
                    budget -= 1;
                    let pause = retry_after_ms.min(1_000);
                    eprintln!(
                        "compas-client: busy, retrying in {pause} ms ({budget} retries left)"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(pause));
                }
                parsed => {
                    print!("{line}");
                    break match parsed {
                        Ok(Response::Error { .. }) => 2,
                        Ok(Response::Busy { .. }) => 3,
                        Ok(response) => {
                            render_stats(&response);
                            render_metrics(&response);
                            0
                        }
                        Err(err) => {
                            eprintln!("compas-client: unparseable response: {err}");
                            2
                        }
                    };
                }
            }
        };
        worst = worst.max(code);
        if matches!(args.op, Op::Shutdown) {
            break;
        }
    }
    worst
}

fn main() {
    let args = Arc::new(parse_args());
    let trace = Trace::open(args.trace_out.as_ref());
    if args.concurrent <= 1 {
        exit(run_session(&args, None, &trace));
    }
    // --concurrent N: N connections, each driving the full --repeat
    // sequence, all under one client identity (quotas are per id, not
    // per connection). Worst exit code wins.
    let handles: Vec<_> = (0..args.concurrent)
        .map(|t| {
            let args = Arc::clone(&args);
            let trace = trace.clone();
            std::thread::Builder::new()
                .name(format!("client-{t}"))
                .spawn(move || run_session(&args, Some(t), &trace))
                .expect("spawn client thread")
        })
        .collect();
    let worst = handles
        .into_iter()
        .map(|h| h.join().unwrap_or(1))
        .max()
        .unwrap_or(0);
    exit(worst);
}
