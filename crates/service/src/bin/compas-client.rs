//! `compas-client` — a one-shot client for `compas-serve`.
//!
//! ```text
//! compas-client [--addr HOST:PORT] --demo bell --shots 1000 --seed 7
//! compas-client --qasm circuit.qasm --shots 500 --seed 1 --backend sv
//! compas-client --stats
//! compas-client --shutdown
//! ```
//!
//! Submits one request (repeated `--repeat` times on the same
//! connection), prints each response line to stdout, and exits 0 on
//! `ok`/`stats`/`bye`, 3 on `busy`, 2 on `error`, 1 on I/O failure.
//! `--demo` builds a circuit locally and ships it as QASM: `bell`, or
//! `ghzN` (an N-qubit GHZ chain, e.g. `ghz8`).
//!
//! A `busy` response is retried up to `--retries` times (default 4),
//! sleeping the server's `retry_after_ms` hint (capped at 1 s) before
//! each resend — the server knows its own load, so the hint *is* the
//! backoff schedule. Exit code 3 means the budget ran out with the
//! server still busy.
//!
//! `--trace-out FILE` appends every raw response line received —
//! including `busy` lines consumed by the retry loop — to `FILE`
//! verbatim, so served-bytes regressions are diffable (`diff old new`)
//! without rebuilding a capture harness.

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use service::{Op, Request, Response, RunRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: compas-client [--addr HOST:PORT] [--id ID] [--repeat K] [--retries K]\n\
         \x20  [--trace-out FILE] (--demo bell|ghzN | --qasm FILE) [--shots N] [--seed N]\n\
         \x20  [--backend NAME] | --stats | --shutdown"
    );
    exit(2);
}

fn demo_circuit(name: &str) -> Option<Circuit> {
    if name == "bell" {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        return Some(c);
    }
    let n: usize = name.strip_prefix("ghz")?.parse().ok()?;
    if !(1..=26).contains(&n) {
        return None;
    }
    let mut c = Circuit::new(n, n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    for q in 0..n {
        c.measure(q, q);
    }
    Some(c)
}

struct Args {
    addr: String,
    id: Option<String>,
    repeat: u64,
    retries: u64,
    trace_out: Option<String>,
    op: Op,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut id = None;
    let mut repeat = 1u64;
    let mut retries = 4u64;
    let mut trace_out: Option<String> = None;
    let mut qasm: Option<String> = None;
    let mut shots = 1024u64;
    let mut seed = 0u64;
    let mut backend = "auto".to_string();
    let mut admin: Option<Op> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = value(&args, i);
                i += 2;
            }
            "--id" => {
                id = Some(value(&args, i));
                i += 2;
            }
            "--repeat" => {
                repeat = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--retries" => {
                retries = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(value(&args, i));
                i += 2;
            }
            "--demo" => {
                let name = value(&args, i);
                let circuit = demo_circuit(&name).unwrap_or_else(|| {
                    eprintln!("unknown demo circuit: {name}");
                    usage()
                });
                qasm = Some(to_qasm3(&circuit));
                i += 2;
            }
            "--qasm" => {
                let path = value(&args, i);
                qasm = Some(std::fs::read_to_string(&path).unwrap_or_else(|err| {
                    eprintln!("cannot read {path}: {err}");
                    exit(1);
                }));
                i += 2;
            }
            "--shots" => {
                shots = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                seed = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--backend" => {
                backend = value(&args, i);
                i += 2;
            }
            "--stats" => {
                admin = Some(Op::Stats);
                i += 1;
            }
            "--shutdown" => {
                admin = Some(Op::Shutdown);
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let op = match (admin, qasm) {
        (Some(op), None) => op,
        (None, Some(qasm)) => Op::Run(RunRequest::new(qasm, shots, seed, backend)),
        _ => usage(),
    };
    Args {
        addr,
        id,
        repeat,
        retries,
        trace_out,
        op,
    }
}

fn main() {
    let args = parse_args();
    let stream = TcpStream::connect(&args.addr).unwrap_or_else(|err| {
        eprintln!("compas-client: cannot connect to {}: {err}", args.addr);
        exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|err| {
        eprintln!("compas-client: {err}");
        exit(1);
    }));
    let mut writer = stream;
    let mut trace_out = args.trace_out.as_ref().map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|err| {
                eprintln!("compas-client: cannot open {path}: {err}");
                exit(1);
            })
    });
    // Dumps one raw response line, exactly as received off the wire.
    let mut dump = |line: &str| {
        if let Some(file) = trace_out.as_mut() {
            if file.write_all(line.as_bytes()).is_err() {
                eprintln!("compas-client: cannot write trace file");
                exit(1);
            }
        }
    };
    let mut worst = 0i32;
    for _ in 0..args.repeat.max(1) {
        let request = Request {
            id: args.id.clone(),
            op: args.op.clone(),
        };
        // Bounded retry on `busy`: the response carries the server's
        // own back-off hint, so honoring it (capped) is strictly
        // better than a client-invented schedule.
        let mut budget = args.retries;
        let code = loop {
            if writer.write_all(request.to_line().as_bytes()).is_err() {
                eprintln!("compas-client: connection lost while sending");
                exit(1);
            }
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    eprintln!("compas-client: server closed the connection");
                    exit(1);
                }
                Ok(_) => {}
            }
            dump(&line);
            match Response::from_line(&line) {
                Ok(Response::Busy { retry_after_ms, .. }) if budget > 0 => {
                    budget -= 1;
                    let pause = retry_after_ms.min(1_000);
                    eprintln!(
                        "compas-client: busy, retrying in {pause} ms ({budget} retries left)"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(pause));
                }
                parsed => {
                    print!("{line}");
                    break match parsed {
                        Ok(Response::Error { .. }) => 2,
                        Ok(Response::Busy { .. }) => 3,
                        Ok(_) => 0,
                        Err(err) => {
                            eprintln!("compas-client: unparseable response: {err}");
                            2
                        }
                    };
                }
            }
        };
        worst = worst.max(code);
        if matches!(args.op, Op::Shutdown) {
            break;
        }
    }
    exit(worst);
}
