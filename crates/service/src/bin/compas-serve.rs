//! `compas-serve` — the stand-alone simulation job server.
//!
//! ```text
//! compas-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--cache N] [--slice N] [--engine-env]
//! ```
//!
//! Binds the address (default `127.0.0.1:7878`; port `0` picks an
//! ephemeral port), prints `compas-serve listening on <addr>` once
//! ready, and serves until a client sends `{"op": "shutdown"}`.
//! Wire protocol: `service::protocol`. The default per-slice engine is
//! sequential (parallelism = `--workers`); `--engine-env` configures
//! it from `COMPAS_THREADS` / `COMPAS_CHUNK` instead.

use engine::Engine;
use service::{Service, ServiceConfig};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: compas-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--cache N] [--slice N] [--engine-env]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServiceConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                config.addr = value(&args, i);
                i += 2;
            }
            "--workers" => {
                config.workers = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--queue" => {
                config.queue_capacity = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--cache" => {
                config.cache_capacity = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--slice" => {
                config.slice_shots = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--engine-env" => {
                config.engine = Engine::from_env();
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if config.workers == 0 {
        eprintln!("refusing to serve with 0 workers (jobs would never run)");
        std::process::exit(2);
    }

    let handle = match Service::spawn(config) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("compas-serve: bind failed: {err}");
            std::process::exit(1);
        }
    };
    println!("compas-serve listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    println!("compas-serve: shut down cleanly");
}
