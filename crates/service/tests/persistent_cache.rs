//! End-to-end disk persistence: a server restarted onto the same cache
//! directory answers previously-computed requests from disk — without
//! re-executing — and tolerates corrupted spill files.

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use engine::Counts;
use service::{Request, Response, RunRequest, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "compas-e2e-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn bell_run(shots: u64, seed: u64) -> RunRequest {
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    RunRequest::new(to_qasm3(&c), shots, seed, "auto")
}

fn spawn_with_dir(dir: &TempDir, workers: usize) -> service::ServiceHandle {
    Service::spawn(ServiceConfig {
        workers,
        cache_dir: Some(dir.0.clone()),
        ..ServiceConfig::default()
    })
    .expect("spawn service")
}

fn round_trip(addr: std::net::SocketAddr, request: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(request.to_line().as_bytes())
        .expect("send");
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("recv");
    assert!(n > 0, "server closed the connection");
    Response::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"))
}

fn ok_tallies(response: Response) -> (bool, Counts) {
    match response {
        Response::Ok {
            cached, tallies, ..
        } => (cached, tallies),
        other => panic!("expected ok, got {other:?}"),
    }
}

#[test]
fn a_restarted_server_serves_warm_from_disk_without_reexecuting() {
    let dir = TempDir::new("warm");
    let request = Request::run(Some("r".into()), bell_run(400, 11));

    // Cold pass: compute, which write-through persists to disk.
    let first = spawn_with_dir(&dir, 2);
    let (cached, cold_tallies) = ok_tallies(round_trip(first.addr(), &request));
    assert!(!cached, "first execution cannot be a cache hit");
    assert_eq!(first.stats().cache_disk_entries, 1);
    first.shutdown();

    // Restart on the same directory with workers: 0 — a server that
    // CANNOT execute. Only a disk hit can answer, so an `ok` response
    // proves the result was served without re-execution.
    let second = spawn_with_dir(&dir, 0);
    let (cached, warm_tallies) = ok_tallies(round_trip(second.addr(), &request));
    assert!(cached, "restarted server must answer from the disk cache");
    assert_eq!(
        warm_tallies, cold_tallies,
        "disk round trip changed the tallies"
    );
    let stats = second.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 0, "no job may have executed");
    second.shutdown();
}

#[test]
fn corrupted_spill_files_degrade_to_a_recompute_not_a_crash() {
    let dir = TempDir::new("corrupt");
    let request = Request::run(None, bell_run(300, 5));

    let first = spawn_with_dir(&dir, 2);
    let (_, cold_tallies) = ok_tallies(round_trip(first.addr(), &request));
    first.shutdown();

    // Vandalise every spill file.
    for entry in std::fs::read_dir(&dir.0).expect("read dir") {
        let path = entry.expect("entry").path();
        std::fs::write(&path, b"{ truncated garbag").expect("corrupt");
    }

    // The restarted server must still serve the request — recomputed,
    // not from the (now unreadable) disk entry — with identical bytes.
    let second = spawn_with_dir(&dir, 2);
    let (cached, tallies) = ok_tallies(round_trip(second.addr(), &request));
    assert!(!cached, "a corrupt spill file must not satisfy the lookup");
    assert_eq!(
        tallies, cold_tallies,
        "recompute diverged from the cold run"
    );
    second.shutdown();
}

#[test]
fn distinct_requests_get_distinct_disk_entries_across_restarts() {
    let dir = TempDir::new("multi");
    let requests: Vec<Request> = (0..3)
        .map(|seed| Request::run(None, bell_run(200 + seed, seed)))
        .collect();

    let first = spawn_with_dir(&dir, 2);
    let cold: Vec<Counts> = requests
        .iter()
        .map(|r| ok_tallies(round_trip(first.addr(), r)).1)
        .collect();
    assert_eq!(first.stats().cache_disk_entries, 3);
    first.shutdown();

    let second = spawn_with_dir(&dir, 0);
    for (request, cold_tallies) in requests.iter().zip(&cold) {
        let (cached, tallies) = ok_tallies(round_trip(second.addr(), request));
        assert!(cached);
        assert_eq!(&tallies, cold_tallies);
    }
    second.shutdown();
}
