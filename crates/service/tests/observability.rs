//! The observability guarantees, end to end:
//!
//! * **Instrumentation never changes served bytes** — the same request
//!   sequence against an instrumented and an uninstrumented server
//!   yields byte-identical response lines (differential test).
//! * The `metrics` wire op serves per-stage latency histograms,
//!   cache/admission counters, connection gauges, and slow traces from
//!   a standalone server, in the stable jsonlite schema.
//! * `--quota-shots-per-sec` admission is deterministic where it can
//!   be: a job larger than the one-second burst capacity is always
//!   rejected, and the rejection is visible in `stats`, per-client
//!   rows, and the registry.

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use engine::Engine;
use service::{
    Op, Request, Response, RunRequest, Scheduler, SchedulerConfig, Service, ServiceConfig,
    Submission,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn bell_qasm() -> String {
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    to_qasm3(&c)
}

fn ghz_qasm(n: usize) -> String {
    let mut c = Circuit::new(n, n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    for q in 0..n {
        c.measure(q, q);
    }
    to_qasm3(&c)
}

/// One wire round trip on a fresh connection; returns the raw line.
fn request_line(addr: SocketAddr, request: &Request) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(request.to_line().as_bytes())
        .expect("send");
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("recv") > 0);
    line
}

#[test]
fn instrumentation_never_changes_served_bytes() {
    let spawn = |metrics: Option<obs::Registry>| {
        Service::spawn(ServiceConfig {
            workers: 2,
            slice_shots: 64,
            metrics,
            ..ServiceConfig::default()
        })
        .expect("spawn")
    };
    let plain = spawn(None);
    let instrumented = spawn(Some(obs::Registry::default()));

    let requests: Vec<Request> = vec![
        Request::run(
            Some("a".into()),
            RunRequest::new(bell_qasm(), 500, 7, "auto"),
        ),
        Request::run(
            Some("b".into()),
            RunRequest::new(ghz_qasm(5), 300, 3, "auto"),
        ),
        // Repeat of "a": a cache hit on both servers.
        Request::run(
            Some("a".into()),
            RunRequest::new(bell_qasm(), 500, 7, "auto"),
        ),
        // A parse error errors identically.
        Request::run(Some("e".into()), RunRequest::new("not qasm", 10, 1, "auto")),
    ];
    for request in &requests {
        let without = request_line(plain.addr(), request);
        let with = request_line(instrumented.addr(), request);
        assert_eq!(without, with, "instrumentation changed served bytes");
    }

    // And the instrumented server did actually observe the traffic.
    let snapshot = instrumented.metrics_snapshot();
    assert!(snapshot.histo("stage.parse").is_some_and(|h| h.count > 0));
    assert!(snapshot.counter("cache.hits") >= Some(1));
    plain.shutdown();
    instrumented.shutdown();
}

#[test]
fn metrics_op_serves_stage_histograms_from_a_standalone_server() {
    let handle = Service::spawn(ServiceConfig {
        workers: 2,
        slice_shots: 64,
        metrics: Some(obs::Registry::default()),
        ..ServiceConfig::default()
    })
    .expect("spawn");

    let run = Request::run(None, RunRequest::new(bell_qasm(), 700, 11, "auto"));
    match Response::from_line(&request_line(handle.addr(), &run)).expect("parse") {
        Response::Ok { shots, .. } => assert_eq!(shots, 700),
        other => panic!("expected ok, got {other:?}"),
    }

    let line = request_line(
        handle.addr(),
        &Request {
            id: Some("m".into()),
            op: Op::Metrics,
        },
    );
    let Response::Metrics { id, snapshot } = Response::from_line(&line).expect("parse") else {
        panic!("expected metrics response: {line}");
    };
    assert_eq!(id.as_deref(), Some("m"));
    // Every stage the standalone path crosses shows up with at least
    // one observation; 700 shots over 64-shot slices is 11 executes.
    for stage in [
        "stage.parse",
        "stage.admission",
        "stage.cache_lookup",
        "stage.compile",
        "stage.execute",
        "stage.merge",
        "stage.encode",
    ] {
        let histo = snapshot
            .histo(stage)
            .unwrap_or_else(|| panic!("{stage} missing from snapshot"));
        assert!(histo.count > 0, "{stage} recorded nothing");
    }
    assert!(snapshot.histo("stage.execute").unwrap().count >= 11);
    assert_eq!(snapshot.counter("sched.completed"), Some(1));
    assert_eq!(snapshot.counter("cache.misses"), Some(1));
    assert!(snapshot.gauge("reactor.open").is_some());
    assert!(!snapshot.slow.is_empty(), "completion retains a slow trace");
    // The snapshot exposes the Prometheus text form, too.
    let text = snapshot.to_prometheus("compas");
    assert!(text.contains("# TYPE compas_stage_execute histogram"));
    handle.shutdown();
}

fn run_request(shots: u64, seed: u64) -> RunRequest {
    RunRequest::new(bell_qasm(), shots, seed, "auto")
}

#[test]
fn rate_quota_rejects_jobs_larger_than_burst_capacity() {
    let registry = obs::Registry::default();
    let sched = Scheduler::new(SchedulerConfig {
        client_quota_shots_per_sec: 100,
        metrics: Some(registry.clone()),
        ..SchedulerConfig::default()
    });
    // 200 shots can never fit a 100-token bucket: rejected no matter
    // how much time passes, so this assertion is timing-independent.
    match sched.submit(
        Some("big".into()),
        &run_request(200, 1).with_client("tenant-a"),
    ) {
        Submission::Immediate(Response::Busy { id, .. }) => {
            assert_eq!(id.as_deref(), Some("big"));
        }
        Submission::Immediate(other) => panic!("expected busy, got {other:?}"),
        Submission::Pending(_) => panic!("over-capacity job was admitted"),
    }
    assert_eq!(sched.stats().rejected_rate, 1);
    let rows = sched.client_rows();
    let a = rows.iter().find(|r| r.client == "tenant-a").unwrap();
    assert_eq!(a.rejected_rate, 1);
    assert_eq!(
        registry.snapshot().counter("sched.rejected_rate"),
        Some(1),
        "the registry mirrors the rejection"
    );

    // A job within capacity is admitted, and other clients have their
    // own buckets.
    let engine = Engine::sequential();
    for (id, client, seed) in [("ok-a", "tenant-a", 2), ("ok-b", "tenant-b", 3)] {
        let Submission::Pending(rx) =
            sched.submit(Some(id.into()), &run_request(50, seed).with_client(client))
        else {
            panic!("{id} should admit");
        };
        while sched.stats().in_flight > 0 {
            let task = sched.next_slice().expect("work pending");
            let counts = task.prepared.run_range(&engine, task.range.clone());
            sched.complete_slice(&task.key, counts);
        }
        assert!(matches!(rx.recv().unwrap(), Response::Ok { .. }));
    }
    assert_eq!(sched.stats().rejected_rate, 1, "no further rejections");
}

#[test]
fn rate_quota_depletes_within_a_burst_window() {
    // Large numbers make the refill between two in-process calls
    // negligible: the second 900k-shot job would need 0.8 s of refill
    // to fit, which back-to-back submissions never see.
    let sched = Scheduler::new(SchedulerConfig {
        client_quota_shots_per_sec: 1_000_000,
        ..SchedulerConfig::default()
    });
    let first = sched.submit(
        Some("first".into()),
        &run_request(900_000, 1).with_client("t"),
    );
    assert!(
        matches!(first, Submission::Pending(_)),
        "a full bucket admits 900k of 1M"
    );
    match sched.submit(
        Some("second".into()),
        &run_request(900_000, 2).with_client("t"),
    ) {
        Submission::Immediate(Response::Busy { .. }) => {}
        Submission::Immediate(other) => panic!("expected busy (bucket depleted), got {other:?}"),
        Submission::Pending(_) => panic!("depleted bucket admitted a 900k job"),
    }
    assert_eq!(sched.stats().rejected_rate, 1);
    // Identical-job coalescing is not charged against the bucket.
    let joined = sched.submit(
        Some("joined".into()),
        &run_request(900_000, 1).with_client("t"),
    );
    assert!(
        matches!(joined, Submission::Pending(_)),
        "waiters ride free"
    );
}

#[test]
fn scheduler_registry_records_stages_and_counters() {
    let registry = obs::Registry::default();
    let sched = Scheduler::new(SchedulerConfig {
        slice_shots: 50,
        metrics: Some(registry.clone()),
        ..SchedulerConfig::default()
    });
    let engine = Engine::sequential();
    let Submission::Pending(rx) = sched.submit(Some("j".into()), &run_request(100, 5)) else {
        panic!("job should admit");
    };
    while sched.stats().in_flight > 0 {
        let task = sched.next_slice().expect("work pending");
        let counts = task.prepared.run_range(&engine, task.range.clone());
        sched.complete_slice(&task.key, counts);
    }
    assert!(matches!(rx.recv().unwrap(), Response::Ok { .. }));
    // A cache hit and a parse error, for the counter surfaces.
    assert!(matches!(
        sched.submit(Some("hit".into()), &run_request(100, 5)),
        Submission::Immediate(Response::Ok { cached: true, .. })
    ));
    assert!(matches!(
        sched.submit(
            Some("bad".into()),
            &RunRequest::new("not qasm", 1, 1, "auto")
        ),
        Submission::Immediate(Response::Error { .. })
    ));

    let snapshot = registry.snapshot();
    for stage in [
        "stage.parse",
        "stage.admission",
        "stage.cache_lookup",
        "stage.compile",
        "stage.merge",
    ] {
        assert!(
            snapshot.histo(stage).is_some_and(|h| h.count > 0),
            "{stage} recorded nothing"
        );
    }
    assert_eq!(snapshot.counter("sched.admitted"), Some(1));
    assert_eq!(snapshot.counter("sched.completed"), Some(1));
    assert_eq!(snapshot.counter("cache.hits"), Some(1));
    assert_eq!(snapshot.counter("cache.misses"), Some(1));
    assert_eq!(snapshot.counter("sched.errors"), Some(1));
    let trace = snapshot.slow.last().expect("slow trace retained");
    assert!(trace.stages.iter().any(|(s, _)| s == "parse"));
    assert!(trace.total_ns > 0);
}
