//! The serving guarantee, end to end: tallies served over TCP — cold,
//! sliced, coalesced, or cached, under concurrent clients — are
//! **bit-identical** to a direct `Backend::sample_shots` call with the
//! same root seed and backend.
//!
//! Honours the CI `COMPAS_BACKEND` matrix: the requested backend (and
//! the reference) follow `Backend::from_env`, and circuits the
//! selected backend cannot execute must produce matching *error*
//! responses, not divergent results.

use circuit::circuit::{Circuit, Instruction};
use circuit::qasm::to_qasm3;
use engine::{Backend, Counts, Executor};
use service::{Request, Response, RunRequest, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn bell() -> Circuit {
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    c
}

fn teleportation() -> Circuit {
    // Mid-circuit measurement, feedback, and reset — the dynamic
    // features the QASM interchange must carry faithfully.
    let mut c = Circuit::new(3, 3);
    c.h(1).cx(1, 2);
    c.cx(0, 1).h(0);
    c.measure(0, 0).measure(1, 1);
    c.cond_x(2, &[1]).cond_z(2, &[0]);
    c.reset(0);
    c.measure(2, 2);
    c
}

fn noisy_ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n, n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
        c.push(Instruction::Depolarizing {
            qubits: vec![q - 1, q],
            p: 0.02,
        });
    }
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

fn magic_state() -> Circuit {
    // Non-Clifford: exercises the statevector fallback — and, under
    // COMPAS_BACKEND=stabilizer, the matching-error contract.
    let mut c = Circuit::new(2, 2);
    c.h(0).t(0).cx(0, 1).measure(0, 0).measure(1, 1);
    c
}

/// One wire round trip on a fresh connection.
fn request_once(addr: SocketAddr, request: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(request.to_line().as_bytes())
        .expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("recv") > 0);
    Response::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"))
}

fn run_request(circuit: &Circuit, shots: u64, seed: u64, backend: Backend) -> RunRequest {
    RunRequest::new(to_qasm3(circuit), shots, seed, backend.name())
}

/// The off-line reference the service must reproduce bit-for-bit.
fn reference(circuit: &Circuit, shots: u64, seed: u64, backend: Backend) -> Option<Counts> {
    backend
        .sample_shots(circuit, shots as usize, &Executor::sequential(seed))
        .ok()
}

/// Asserts one served response against the reference (result or
/// matching error).
fn assert_matches_reference(
    response: &Response,
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    backend: Backend,
    context: &str,
) {
    match (reference(circuit, shots, seed, backend), response) {
        (Some(expected), Response::Ok { tallies, .. }) => {
            assert_eq!(
                tallies, &expected,
                "{context}: served tallies diverged from Backend::sample_shots"
            );
        }
        (None, Response::Error { .. }) => {}
        (expected, got) => panic!(
            "{context}: reference {} but server answered {got:?}",
            if expected.is_some() {
                "succeeds"
            } else {
                "errors"
            },
        ),
    }
}

/// Small slices + multiple workers: the serving path exercises
/// multi-slice merging even at modest shot counts.
fn spawn_slicing_service() -> service::ServiceHandle {
    Service::spawn(ServiceConfig {
        workers: 2,
        slice_shots: 64,
        ..ServiceConfig::default()
    })
    .expect("spawn service")
}

#[test]
fn served_tallies_match_direct_sampling_per_workload() {
    let backend = Backend::from_env();
    let handle = spawn_slicing_service();
    for (name, circuit, shots, seed) in [
        ("bell", bell(), 1_000u64, 7u64),
        ("teleportation", teleportation(), 700, 21),
        ("noisy-ghz-5", noisy_ghz(5), 900, 3),
        ("magic-state", magic_state(), 500, 40),
    ] {
        let response = request_once(
            handle.addr(),
            &Request::run(None, run_request(&circuit, shots, seed, backend)),
        );
        assert_matches_reference(&response, &circuit, shots, seed, backend, name);
        // The cached replay must serve the same bytes' worth of data.
        let cached = request_once(
            handle.addr(),
            &Request::run(None, run_request(&circuit, shots, seed, backend)),
        );
        match (&response, &cached) {
            (
                Response::Ok { tallies, .. },
                Response::Ok {
                    tallies: warm,
                    cached: flag,
                    ..
                },
            ) => {
                assert_eq!(warm, tallies, "{name}: cached tallies diverged");
                assert!(flag, "{name}: second response should come from cache");
            }
            (Response::Error { .. }, Response::Error { .. }) => {}
            (a, b) => panic!("{name}: inconsistent cold/warm pair: {a:?} vs {b:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn every_request_backend_matches_its_reference() {
    // Explicitly pin each backend (not just the env-selected one):
    // statevector, stabilizer, density, and auto must all serve their
    // own reference tallies or their own typed errors.
    let handle = spawn_slicing_service();
    let circuits = [bell(), teleportation(), magic_state()];
    for backend in [
        Backend::Auto,
        Backend::StateVector,
        Backend::Stabilizer,
        Backend::Density,
    ] {
        for (i, circuit) in circuits.iter().enumerate() {
            let (shots, seed) = (400u64, 100 + i as u64);
            let response = request_once(
                handle.addr(),
                &Request::run(None, run_request(circuit, shots, seed, backend)),
            );
            assert_matches_reference(
                &response,
                circuit,
                shots,
                seed,
                backend,
                &format!("backend {backend} circuit {i}"),
            );
        }
    }
    handle.shutdown();
}

#[test]
fn concurrent_overlapping_clients_all_get_reference_tallies() {
    let backend = Backend::from_env();
    let handle = spawn_slicing_service();
    let addr = handle.addr();

    // 4 clients × 6 requests over 3 distinct jobs: every job is
    // requested by several clients, so the run exercises coalescing
    // and caching under real concurrency. Per-job shot counts stay
    // distinct from each other to catch key mix-ups.
    let jobs: Vec<(Circuit, u64, u64)> = vec![
        (bell(), 1_200, 5),
        (teleportation(), 800, 6),
        (noisy_ghz(4), 600, 7),
    ];
    let workers: Vec<_> = (0..4)
        .map(|client_idx| {
            let jobs = jobs.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                for round in 0..2 {
                    for (job_idx, (circuit, shots, seed)) in jobs.iter().enumerate() {
                        let request = Request::run(
                            Some(format!("c{client_idx}-r{round}-j{job_idx}")),
                            run_request(circuit, *shots, *seed, backend),
                        );
                        writer
                            .write_all(request.to_line().as_bytes())
                            .expect("send");
                        let mut line = String::new();
                        assert!(reader.read_line(&mut line).expect("recv") > 0);
                        let response =
                            Response::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
                        assert_matches_reference(
                            &response,
                            circuit,
                            *shots,
                            *seed,
                            backend,
                            &format!("client {client_idx} round {round} job {job_idx}"),
                        );
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // Accounting: 4 clients × 2 rounds × 3 jobs = 24 requests over 3
    // unique jobs → at most 3 executions (exactly 3 when the backend
    // supports all circuits); everything else was coalesced or cached.
    let stats = handle.stats();
    let executable = jobs
        .iter()
        .filter(|(c, shots, seed)| reference(c, *shots, *seed, backend).is_some())
        .count() as u64;
    assert_eq!(stats.received, 24);
    assert_eq!(
        stats.cache_misses, executable,
        "each unique job must execute exactly once: {stats:?}"
    );
    assert_eq!(
        stats.cache_hits + stats.coalesced + stats.errors,
        24 - executable,
        "every duplicate must be served without re-execution: {stats:?}"
    );
    assert_eq!(stats.completed, executable);
    handle.shutdown();
}

#[test]
fn slicing_configuration_never_changes_results() {
    // The same job served under wildly different slicing/worker
    // configurations produces byte-identical tally lines.
    let backend = Backend::from_env();
    let circuit = noisy_ghz(5);
    let (shots, seed) = (1_500u64, 99u64);
    let mut lines = Vec::new();
    for (workers, slice) in [(1usize, 10_000u64), (2, 64), (4, 17)] {
        let handle = Service::spawn(ServiceConfig {
            workers,
            slice_shots: slice,
            ..ServiceConfig::default()
        })
        .expect("spawn");
        let response = request_once(
            handle.addr(),
            &Request::run(None, run_request(&circuit, shots, seed, backend)),
        );
        lines.push(response.to_line());
        handle.shutdown();
    }
    assert_eq!(lines[0], lines[1], "slice size changed the served bytes");
    assert_eq!(lines[0], lines[2], "worker count changed the served bytes");
}

#[test]
fn ranged_requests_reassemble_the_full_run_exactly() {
    // The seam the shard coordinator is built on, proven at the wire:
    // partition the global shot range, serve each part as a
    // `shot_range` sub-request, merge the tallies — the result is
    // bit-identical to the unranged run (and to the direct reference).
    let backend = Backend::from_env();
    let circuit = noisy_ghz(5);
    let (shots, seed) = (1_200u64, 13u64);
    let handle = spawn_slicing_service();
    let full = request_once(
        handle.addr(),
        &Request::run(None, run_request(&circuit, shots, seed, backend)),
    );
    assert_matches_reference(&full, &circuit, shots, seed, backend, "unranged");
    for parts in [2usize, 3, 5] {
        let mut merged = Counts::new();
        for part in engine::partition_shots(0..shots, parts) {
            let request = RunRequest::new(to_qasm3(&circuit), 0, seed, backend.name())
                .with_shot_range(part.start, part.end);
            match request_once(handle.addr(), &Request::run(None, request)) {
                Response::Ok {
                    shots: n, tallies, ..
                } => {
                    assert_eq!(
                        n,
                        part.end - part.start,
                        "{parts} parts: wrong slice length"
                    );
                    engine::merge_counts(&mut merged, tallies);
                }
                Response::Error { .. } if matches!(full, Response::Error { .. }) => {}
                other => panic!("{parts} parts: unexpected response {other:?}"),
            }
        }
        if let Response::Ok { tallies, .. } = &full {
            assert_eq!(
                &merged, tallies,
                "{parts} ranged parts did not reassemble the unranged run"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn a_full_range_request_shares_the_cache_with_the_unranged_form() {
    // `shot_range: [0, n]` and plain `shots: n` are the same job: the
    // admission key makes the second form a cache hit on the first.
    let backend = Backend::from_env();
    let circuit = bell();
    let (shots, seed) = (400u64, 77u64);
    let handle = spawn_slicing_service();
    let cold = request_once(
        handle.addr(),
        &Request::run(None, run_request(&circuit, shots, seed, backend)),
    );
    let ranged =
        RunRequest::new(to_qasm3(&circuit), 0, seed, backend.name()).with_shot_range(0, shots);
    let warm = request_once(handle.addr(), &Request::run(None, ranged));
    match (&cold, &warm) {
        (
            Response::Ok { tallies, .. },
            Response::Ok {
                tallies: w, cached, ..
            },
        ) => {
            assert!(*cached, "[0, n] must hit the plain-n cache entry");
            assert_eq!(w, tallies);
        }
        (Response::Error { .. }, Response::Error { .. }) => {}
        (a, b) => panic!("inconsistent pair: {a:?} vs {b:?}"),
    }
    handle.shutdown();
}

#[test]
fn mismatched_shot_range_lengths_are_rejected_on_the_wire() {
    let handle = Service::spawn(ServiceConfig::default()).expect("spawn");
    let mut request = run_request(&bell(), 100, 1, Backend::Auto);
    request.shot_range = Some((5, 50)); // length 45, shots says 100
    let response = request_once(handle.addr(), &Request::run(None, request));
    match response {
        Response::Error { error, .. } => {
            assert!(error.contains("length"), "unhelpful error: {error}")
        }
        other => panic!("expected an admission error, got {other:?}"),
    }
    handle.shutdown();
}
