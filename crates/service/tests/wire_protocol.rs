//! Wire-level behaviour of a live server: framing, error handling,
//! caching, deterministic backpressure, stats, and clean shutdown —
//! everything a client can observe on the socket.

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use engine::Counts;
use service::{Request, Response, RunRequest, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Response::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"))
    }

    fn round_trip(&mut self, request: &Request) -> Response {
        self.send_raw(&request.to_line());
        self.recv()
    }
}

fn bell_run(shots: u64, seed: u64) -> RunRequest {
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    RunRequest::new(to_qasm3(&c), shots, seed, "auto")
}

fn spawn_default() -> service::ServiceHandle {
    Service::spawn(ServiceConfig::default()).expect("spawn service")
}

#[test]
fn ok_response_fields_and_cache_flag() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr());
    let request = Request::run(Some("req-1".into()), bell_run(400, 11));
    let cold = client.round_trip(&request);
    let Response::Ok {
        id,
        backend,
        shots,
        cached,
        coalesced,
        tallies,
    } = cold
    else {
        panic!("unexpected response {cold:?}");
    };
    assert_eq!(id.as_deref(), Some("req-1"));
    assert_eq!(
        backend, "stabilizer",
        "Auto must resolve the Clifford Bell pair"
    );
    assert_eq!(shots, 400);
    assert!(!cached && !coalesced);
    assert_eq!(tallies.values().sum::<usize>(), 400);
    assert!(tallies.keys().all(|&k| k == 0 || k == 3), "{tallies:?}");

    // Identical request → served from cache, identical tallies.
    let warm = client.round_trip(&request);
    match warm {
        Response::Ok {
            cached: true,
            tallies: warm_tallies,
            ..
        } => assert_eq!(warm_tallies, tallies),
        other => panic!("expected a cache hit, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr());
    for bad in [
        "this is not json\n",
        "[1, 2, 3]\n",
        "{\"op\": \"run\"}\n",
        "{\"qasm\": \"nope\", \"shots\": 1, \"root_seed\": 0}\n",
        "{\"qasm\": \"x\", \"shots\": 1, \"root_seed\": 0, \"backend\": \"qutrit\"}\n",
    ] {
        client.send_raw(bad);
        let response = client.recv();
        assert!(
            matches!(response, Response::Error { .. }),
            "{bad:?} → {response:?}"
        );
    }
    // The connection still serves good requests afterwards.
    let ok = client.round_trip(&Request::run(None, bell_run(50, 1)));
    assert!(matches!(ok, Response::Ok { .. }), "{ok:?}");
    let stats = handle.stats();
    assert_eq!(stats.errors, 5);
    assert_eq!(stats.received, 6);
    handle.shutdown();
}

#[test]
fn blank_lines_are_ignored() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr());
    client.send_raw("\n  \n");
    let ok = client.round_trip(&Request::run(None, bell_run(10, 0)));
    assert!(matches!(ok, Response::Ok { .. }));
    handle.shutdown();
}

#[test]
fn backpressure_is_deterministic_with_no_workers() {
    // workers = 0 admits jobs but never runs them, so the queue state
    // is fully deterministic: A occupies the single slot, B must be
    // rejected busy, and an A-identical request must coalesce.
    let handle = Service::spawn(ServiceConfig {
        workers: 0,
        queue_capacity: 1,
        ..ServiceConfig::default()
    })
    .expect("spawn");
    let mut probe = Client::connect(handle.addr());

    // Submit A on its own connection; its response can never arrive,
    // so only fire-and-forget the line.
    let mut submitter = Client::connect(handle.addr());
    submitter.send_raw(&Request::run(Some("A".into()), bell_run(1_000, 1)).to_line());
    // Wait until A is admitted (visible in the in-flight gauge).
    for _ in 0..200 {
        if handle.stats().in_flight == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(handle.stats().in_flight, 1, "A was not admitted");

    // A distinct job B bounces with a retry hint.
    let busy = probe.round_trip(&Request::run(Some("B".into()), bell_run(1_000, 2)));
    match busy {
        Response::Busy {
            id,
            in_flight,
            retry_after_ms,
        } => {
            assert_eq!(id.as_deref(), Some("B"));
            assert_eq!(in_flight, 1);
            assert!(retry_after_ms > 0);
        }
        other => panic!("expected busy, got {other:?}"),
    }
    assert_eq!(handle.stats().rejected_busy, 1);
    handle.shutdown();
}

#[test]
fn stats_op_reports_counters_over_the_wire() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr());
    client.round_trip(&Request::run(None, bell_run(60, 5)));
    client.round_trip(&Request::run(None, bell_run(60, 5)));
    let response = client.round_trip(&Request {
        id: Some("s".into()),
        op: service::Op::Stats,
    });
    let Response::Stats {
        id,
        stats,
        workers,
        clients,
    } = response
    else {
        panic!("unexpected {response:?}");
    };
    assert_eq!(id.as_deref(), Some("s"));
    assert!(
        workers.is_empty(),
        "a single-machine server reports no worker rows"
    );
    assert_eq!(stats.received, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(clients.len(), 1, "anonymous requests tally one client row");
    assert_eq!(clients[0].client, "");
    assert_eq!(clients[0].admitted, 1);
    assert_eq!(clients[0].coalesced, 0, "second request hit the cache");
    // The querying connection itself is open (and counted).
    assert!(stats.open_connections >= 1);
    handle.shutdown();
}

#[test]
fn shutdown_op_acknowledges_then_stops_the_server() {
    let handle = spawn_default();
    let addr = handle.addr();
    let mut client = Client::connect(addr);
    let bye = client.round_trip(&Request {
        id: Some("bye".into()),
        op: service::Op::Shutdown,
    });
    assert!(matches!(bye, Response::Bye { id: Some(ref i) } if i == "bye"));
    // join() returns because the wire shutdown stopped all threads.
    handle.join();
    // New work is no longer served: either the connect fails or the
    // submitted request gets no response.
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let _ = writer.write_all(Request::run(None, bell_run(10, 0)).to_line().as_bytes());
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "post-shutdown server answered: {line}");
    }
}

#[test]
fn zero_shot_requests_return_empty_tallies() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr());
    let response = client.round_trip(&Request::run(None, bell_run(0, 9)));
    match response {
        Response::Ok { shots, tallies, .. } => {
            assert_eq!(shots, 0);
            assert_eq!(tallies, Counts::new());
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn oversized_request_lines_are_rejected_without_oom() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr());
    // 9 MB of garbage with no newline: the server must cut us off
    // after MAX_LINE_BYTES rather than buffering forever.
    let chunk = vec![b'x'; 1 << 20];
    let mut sent = 0u64;
    while sent < 9 * (1 << 20) {
        if client.writer.write_all(&chunk).is_err() {
            break; // server already hung up — also acceptable
        }
        sent += chunk.len() as u64;
    }
    let _ = client.writer.flush();
    let mut line = String::new();
    // Either an error response arrives or the connection is closed.
    match client.reader.read_line(&mut line) {
        Ok(0) | Err(_) => {}
        Ok(_) => {
            let response = Response::from_line(&line).expect("parse");
            assert!(matches!(response, Response::Error { .. }), "{response:?}");
        }
    }
    handle.shutdown();
}
