//! Per-client fair-share scheduling and admission quotas.
//!
//! The scheduler-level tests drive slices by hand (no worker threads),
//! so the interleaving they assert is fully deterministic; the
//! wire-level test checks the same quota surfaces through a live
//! server with `workers: 0` (admit but never execute — the only
//! configuration where queue occupancy is deterministic).

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use engine::Engine;
use service::{
    Request, Response, RunRequest, Scheduler, SchedulerConfig, Service, ServiceConfig, Submission,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn bell_qasm() -> String {
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    to_qasm3(&c)
}

fn run_request(shots: u64, seed: u64) -> RunRequest {
    RunRequest::new(bell_qasm(), shots, seed, "auto")
}

fn pending(submission: Submission) -> std::sync::mpsc::Receiver<Response> {
    match submission {
        Submission::Pending(rx) => rx,
        Submission::Immediate(r) => panic!("expected pending, got {r:?}"),
    }
}

/// Drains every pending slice on the calling thread (a deterministic
/// in-test worker; `next_slice` blocks when idle, so the loop is
/// guarded by the in-flight gauge) and returns the client each slice
/// was charged to, in execution order.
fn drain_in_order(sched: &Scheduler, engine: &Engine) -> Vec<String> {
    let mut order = Vec::new();
    while sched.stats().in_flight > 0 {
        let task = sched.next_slice().expect("work pending");
        order.push(task.client.clone());
        let counts = task.prepared.run_range(engine, task.range.clone());
        sched.complete_slice(&task.key, counts);
    }
    order
}

#[test]
fn a_greedy_client_cannot_starve_a_light_client() {
    // greedy enqueues a 10-slice job before light's single-slice job
    // arrives. Round-robin between *clients* must serve light's slice
    // second, not eleventh.
    let sched = Scheduler::new(SchedulerConfig {
        slice_shots: 100,
        ..SchedulerConfig::default()
    });
    let engine = Engine::sequential();
    let rx_greedy = pending(sched.submit(
        Some("g".into()),
        &run_request(1_000, 1).with_client("greedy"),
    ));
    let rx_light =
        pending(sched.submit(Some("l".into()), &run_request(100, 2).with_client("light")));

    let order = drain_in_order(&sched, &engine);
    assert_eq!(order.len(), 11, "10 greedy slices + 1 light slice");
    assert_eq!(
        order[1], "light",
        "light's slice must run after exactly one greedy slice: {order:?}"
    );
    assert!(order[0] == "greedy" && order[2..].iter().all(|c| c == "greedy"));

    assert!(matches!(rx_greedy.recv().unwrap(), Response::Ok { .. }));
    assert!(matches!(rx_light.recv().unwrap(), Response::Ok { .. }));
}

#[test]
fn interleaving_alternates_between_clients_with_equal_backlogs() {
    // Two clients, two multi-slice jobs each: the slice sequence must
    // alternate a-b-a-b..., never draining one client first.
    let sched = Scheduler::new(SchedulerConfig {
        slice_shots: 50,
        ..SchedulerConfig::default()
    });
    let engine = Engine::sequential();
    let mut receivers = Vec::new();
    for (client, seed) in [("a", 1), ("b", 2), ("a", 3), ("b", 4)] {
        receivers.push(pending(
            sched.submit(None, &run_request(100, seed).with_client(client)),
        ));
    }
    let order = drain_in_order(&sched, &engine);
    assert_eq!(order.len(), 8, "4 jobs × 2 slices");
    let expected: Vec<String> = ["a", "b"]
        .iter()
        .cycle()
        .take(8)
        .map(|s| s.to_string())
        .collect();
    assert_eq!(order, expected, "clients must alternate strictly");
    for rx in receivers {
        assert!(matches!(rx.recv().unwrap(), Response::Ok { .. }));
    }
}

#[test]
fn quota_rejects_distinct_jobs_but_not_coalesced_or_other_clients() {
    let sched = Scheduler::new(SchedulerConfig {
        client_quota_shots: 500,
        ..SchedulerConfig::default()
    });
    let engine = Engine::sequential();

    // 400 in-flight shots for tenant-a: under quota, admitted.
    let first = run_request(400, 1).with_client("tenant-a");
    let rx_first = pending(sched.submit(Some("first".into()), &first));

    // A distinct 200-shot job would exceed 500 → busy.
    let over = sched.submit(
        Some("over".into()),
        &run_request(200, 2).with_client("tenant-a"),
    );
    match over {
        Submission::Immediate(Response::Busy { id, .. }) => {
            assert_eq!(id.as_deref(), Some("over"));
        }
        Submission::Immediate(r) => panic!("expected busy, got {r:?}"),
        Submission::Pending(_) => panic!("quota-exceeding job was admitted"),
    }

    // An *identical* request coalesces — waiters are never charged.
    let rx_joined = pending(sched.submit(Some("joined".into()), &first));

    // Another client is unaffected by tenant-a's quota pressure.
    let rx_other = pending(sched.submit(
        Some("other".into()),
        &run_request(400, 3).with_client("tenant-b"),
    ));

    let rows = sched.client_rows();
    let a = rows.iter().find(|r| r.client == "tenant-a").unwrap();
    assert_eq!(a.admitted, 1);
    assert_eq!(a.rejected_quota, 1);
    assert_eq!(a.coalesced, 1);
    assert_eq!(a.inflight_shots, 400, "only the admitted job is charged");
    assert_eq!(sched.stats().rejected_quota, 1);

    drain_in_order(&sched, &engine);
    for rx in [rx_first, rx_joined, rx_other] {
        assert!(matches!(rx.recv().unwrap(), Response::Ok { .. }));
    }

    // Completion releases the charge: the once-rejected job now fits.
    let rows = sched.client_rows();
    let a = rows.iter().find(|r| r.client == "tenant-a").unwrap();
    assert_eq!(a.inflight_shots, 0, "completion must release the quota");
    pending(sched.submit(
        Some("retry".into()),
        &run_request(200, 2).with_client("tenant-a"),
    ));
}

#[test]
fn quota_busy_is_observable_over_the_wire() {
    // workers: 0 keeps the first job in flight forever, so the quota
    // state the second request sees is deterministic.
    let handle = Service::spawn(ServiceConfig {
        workers: 0,
        client_quota_shots: 500,
        ..ServiceConfig::default()
    })
    .expect("spawn");
    let addr = handle.addr();

    let submit = TcpStream::connect(addr).expect("connect");
    let mut submit_writer = submit.try_clone().expect("clone");
    let line = Request::run(
        Some("A".into()),
        run_request(400, 1).with_client("tenant-a"),
    )
    .to_line();
    submit_writer.write_all(line.as_bytes()).expect("send");
    for _ in 0..200 {
        if handle.stats().in_flight == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(handle.stats().in_flight, 1, "A was not admitted");

    let probe = TcpStream::connect(addr).expect("connect");
    let mut probe_writer = probe.try_clone().expect("clone");
    let mut probe_reader = BufReader::new(probe);
    let line = Request::run(
        Some("B".into()),
        run_request(200, 2).with_client("tenant-a"),
    )
    .to_line();
    probe_writer.write_all(line.as_bytes()).expect("send");
    let mut reply = String::new();
    probe_reader.read_line(&mut reply).expect("recv");
    match Response::from_line(&reply).expect("parse") {
        Response::Busy { id, .. } => assert_eq!(id.as_deref(), Some("B")),
        other => panic!("expected busy, got {other:?}"),
    }

    let stats = handle.stats();
    assert_eq!(stats.rejected_quota, 1);
    let rows = handle.client_rows();
    let a = rows.iter().find(|r| r.client == "tenant-a").unwrap();
    assert_eq!(a.rejected_quota, 1);
    handle.shutdown();
}
