//! Many-idle-connections soak: the evented front end must hold
//! hundreds of idle sockets without spawning per-connection threads.
//!
//! This lives in its own integration-test binary so the process thread
//! count it measures is not perturbed by sibling tests running in
//! parallel.

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use service::{Request, Response, RunRequest, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// The process's live thread count, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn thread_count() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn idle_connections_do_not_cost_threads() {
    const IDLE: usize = 256;
    let handle = Service::spawn(ServiceConfig {
        max_connections: IDLE + 16,
        ..ServiceConfig::default()
    })
    .expect("spawn");
    let addr = handle.addr();

    #[cfg(target_os = "linux")]
    let baseline = thread_count();

    // Open and hold IDLE sockets that never send a byte.
    let idlers: Vec<TcpStream> = (0..IDLE)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idler {i}: {e}")))
        .collect();

    // Wait until the reactor has accepted all of them.
    for _ in 0..400 {
        if handle.gauges().open >= IDLE as u64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let gauges = handle.gauges();
    assert!(
        gauges.open >= IDLE as u64,
        "reactor accepted only {} of {IDLE} idle connections",
        gauges.open
    );

    // The whole point: connection count must not buy threads. A
    // thread-per-connection design would add ~256 here; the reactor
    // adds zero (small slack for unrelated runtime threads).
    #[cfg(target_os = "linux")]
    {
        let now = thread_count();
        assert!(
            now <= baseline + 8,
            "thread count grew from {baseline} to {now} while holding {IDLE} idle sockets"
        );
    }

    // The server still does real work under the idle load…
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    let stream = TcpStream::connect(addr).expect("connect worker");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let request = Request::run(
        Some("under-load".into()),
        RunRequest::new(to_qasm3(&c), 500, 7, "auto"),
    );
    writer
        .write_all(request.to_line().as_bytes())
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    match Response::from_line(&line).expect("parse") {
        Response::Ok { shots, tallies, .. } => {
            assert_eq!(shots, 500);
            assert_eq!(tallies.values().sum::<usize>(), 500);
        }
        other => panic!("unexpected {other:?}"),
    }

    // …and the stats op sees the idle herd.
    writer
        .write_all(
            Request {
                id: Some("s".into()),
                op: service::Op::Stats,
            }
            .to_line()
            .as_bytes(),
        )
        .expect("send stats");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv stats");
    match Response::from_line(&line).expect("parse") {
        Response::Stats { stats, .. } => {
            assert!(
                stats.open_connections >= IDLE as u64,
                "stats report {} open connections",
                stats.open_connections
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    drop(idlers);
    handle.shutdown();
}
