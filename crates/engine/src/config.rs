//! Engine configuration from code, environment, and CLI.

/// How an [`crate::Engine`] partitions and parallelises work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub threads: usize,
    /// Shots per work unit claimed from the shared cursor. Small enough
    /// to balance load, large enough to amortise the atomic claim.
    pub chunk_size: u64,
    /// Workers used to split **one shot's** amplitude space when the
    /// amp-parallel policy engages (see [`EngineConfig::amp_engaged`]).
    /// `1` disables amplitude-level parallelism.
    pub amp_threads: usize,
    /// Minimum state width (qubits) at which amp-parallel replay
    /// engages. Below the threshold per-shot fork/join overhead beats
    /// the bandwidth win, and shot-level parallelism is strictly
    /// better; above it a single shot's latency is one core's memory
    /// bandwidth, which splitting the amplitude space fixes.
    pub amp_threshold_qubits: usize,
}

/// Default [`EngineConfig::amp_threshold_qubits`]: a 2^20-amplitude
/// (16 MiB) state is where one shot stops fitting in cache and a
/// single core's bandwidth becomes the latency floor.
pub const DEFAULT_AMP_THRESHOLD_QUBITS: usize = 20;

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineConfig {
            threads: cores,
            chunk_size: 256,
            amp_threads: cores,
            amp_threshold_qubits: DEFAULT_AMP_THRESHOLD_QUBITS,
        }
    }
}

impl EngineConfig {
    /// A single-threaded configuration (the sequential reference path):
    /// one shot worker and no amplitude-level parallelism.
    pub fn single_threaded() -> Self {
        EngineConfig {
            threads: 1,
            amp_threads: 1,
            ..Self::default()
        }
    }

    /// Exactly `threads` shot workers with the default chunk size and
    /// amp-parallel knobs.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Builder-style override of [`EngineConfig::amp_threads`].
    pub fn with_amp_threads(mut self, amp_threads: usize) -> Self {
        self.amp_threads = amp_threads.max(1);
        self
    }

    /// Builder-style override of
    /// [`EngineConfig::amp_threshold_qubits`].
    pub fn with_amp_threshold(mut self, qubits: usize) -> Self {
        self.amp_threshold_qubits = qubits;
        self
    }

    /// Whether a plan on a `num_qubits`-wide state should run
    /// amp-parallel: the backend must support bit-identical
    /// amplitude-range splitting (`amp_capable`, i.e.
    /// `SimState::AMP_PARALLEL`), more than one amp worker must be
    /// configured, and the state must be at or above the width
    /// threshold. Pure policy — engaging or not never changes tallies,
    /// only latency.
    pub fn amp_engaged(&self, amp_capable: bool, num_qubits: usize) -> bool {
        amp_capable && self.amp_threads > 1 && num_qubits >= self.amp_threshold_qubits
    }

    /// Reads the configuration from the process environment and CLI:
    /// `COMPAS_THREADS` / `--threads N` set the shot-worker count,
    /// `COMPAS_CHUNK` the chunk size, `COMPAS_AMP_THREADS` the
    /// amp-parallel worker count (`1` disables), and
    /// `COMPAS_AMP_QUBITS` the engagement threshold. Unset or
    /// unparsable values fall back to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(n) = env_usize("COMPAS_THREADS") {
            cfg.threads = n.max(1);
        }
        if let Some(n) = cli_threads() {
            cfg.threads = n.max(1);
        }
        if let Some(n) = env_usize("COMPAS_CHUNK") {
            cfg.chunk_size = (n as u64).max(1);
        }
        if let Some(n) = env_usize("COMPAS_AMP_THREADS") {
            cfg.amp_threads = n.max(1);
        }
        if let Some(n) = env_usize("COMPAS_AMP_QUBITS") {
            cfg.amp_threshold_qubits = n;
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Parses `--threads N` or `--threads=N` from the process arguments.
fn cli_threads() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok();
        }
        if arg == "--threads" {
            return args.get(i + 1)?.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = EngineConfig::default();
        assert!(cfg.threads >= 1);
        assert!(cfg.chunk_size >= 1);
        assert!(cfg.amp_threads >= 1);
        assert_eq!(cfg.amp_threshold_qubits, DEFAULT_AMP_THRESHOLD_QUBITS);
        assert_eq!(EngineConfig::single_threaded().threads, 1);
        assert_eq!(EngineConfig::single_threaded().amp_threads, 1);
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        assert_eq!(EngineConfig::with_threads(8).threads, 8);
    }

    #[test]
    fn amp_engagement_is_pure_policy_on_width_and_knobs() {
        let cfg = EngineConfig::with_threads(4)
            .with_amp_threads(8)
            .with_amp_threshold(20);
        assert!(cfg.amp_engaged(true, 20));
        assert!(cfg.amp_engaged(true, 24));
        assert!(!cfg.amp_engaged(true, 19), "below the width threshold");
        assert!(!cfg.amp_engaged(false, 24), "backend cannot range-split");
        let off = cfg.clone().with_amp_threads(1);
        assert!(!off.amp_engaged(true, 24), "one amp worker disables");
        assert!(
            !EngineConfig::single_threaded().amp_engaged(true, 24),
            "the sequential reference path never amp-engages"
        );
        let zero = EngineConfig::with_threads(1)
            .with_amp_threads(2)
            .with_amp_threshold(0);
        assert!(zero.amp_engaged(true, 2), "threshold 0 engages everywhere");
    }
}
