//! Engine configuration from code, environment, and CLI.

/// How an [`crate::Engine`] partitions and parallelises work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub threads: usize,
    /// Shots per work unit claimed from the shared cursor. Small enough
    /// to balance load, large enough to amortise the atomic claim.
    pub chunk_size: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            chunk_size: 256,
        }
    }
}

impl EngineConfig {
    /// A single-threaded configuration (the sequential reference path).
    pub fn single_threaded() -> Self {
        EngineConfig {
            threads: 1,
            ..Self::default()
        }
    }

    /// Exactly `threads` workers with the default chunk size.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Reads the configuration from the process environment and CLI:
    /// `COMPAS_THREADS` / `--threads N` set the worker count,
    /// `COMPAS_CHUNK` the chunk size. Unset or unparsable values fall
    /// back to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(n) = env_usize("COMPAS_THREADS") {
            cfg.threads = n.max(1);
        }
        if let Some(n) = cli_threads() {
            cfg.threads = n.max(1);
        }
        if let Some(n) = env_usize("COMPAS_CHUNK") {
            cfg.chunk_size = (n as u64).max(1);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Parses `--threads N` or `--threads=N` from the process arguments.
fn cli_threads() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok();
        }
        if arg == "--threads" {
            return args.get(i + 1)?.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = EngineConfig::default();
        assert!(cfg.threads >= 1);
        assert!(cfg.chunk_size >= 1);
        assert_eq!(EngineConfig::single_threaded().threads, 1);
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        assert_eq!(EngineConfig::with_threads(8).threads, 8);
    }
}
