//! The worker pool: chunked, deterministic parallel folding of shots.

use circuit::circuit::Circuit;
use qsim::runner::{pack_cbits, run_program_into, run_program_into_parallel};
use qsim::sim::SimState;
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::EngineConfig;
use crate::seed::{derive_stream_seed, shot_rng};
use crate::trace::{ShotRecord, TraceBuffer, TraceSink};

/// Histogram of packed classical-register outcomes, matching the key
/// and value conventions of `qsim::runner::sample_shots`.
pub type Counts = HashMap<usize, usize>;

/// One sampling job: play `circuit` from `initial` for `shots`
/// repetitions under root seed `root_seed`, histogramming the classical
/// register.
///
/// Generic over the simulation backend `S` ([`SimState`]), defaulting
/// to the statevector; `ShotPlan<CliffordState>` runs the same job on
/// the stabilizer tableau, `ShotPlan<DensityMatrix>` on the exact
/// deferred-measurement path. The runtime selector is
/// [`Backend`](crate::Backend).
#[derive(Debug, Clone)]
pub struct ShotPlan<S: SimState = StateVector> {
    /// The circuit to play (may include measurement, reset, feed-forward
    /// and stochastic noise sites). Private — the compiled `program` is
    /// derived from it at construction, so mutating it afterwards would
    /// silently desynchronize what the plan executes.
    circuit: Circuit,
    /// The initial state each shot starts from.
    initial: S,
    /// Number of repetitions.
    shots: u64,
    /// Root seed; shot `i` runs on stream `derive_stream_seed(root, i)`.
    root_seed: u64,
    /// The circuit lowered once by [`SimState::compile`]; every shot on
    /// every worker replays this instead of re-interpreting the
    /// instruction stream.
    program: S::Program,
}

impl<S: SimState> ShotPlan<S> {
    /// Builds a plan, validating that the state covers the circuit
    /// (and, under debug assertions, probing the backend's capability
    /// contract once — per plan, not per shot), and compiling the
    /// circuit once for the backend.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than `initial` has.
    pub fn new(circuit: Circuit, initial: S, shots: u64, root_seed: u64) -> Self {
        assert!(
            circuit.num_qubits() <= initial.num_qubits(),
            "circuit needs {} qubits but the state has {}",
            circuit.num_qubits(),
            initial.num_qubits()
        );
        debug_assert!(
            S::supports(&circuit).is_ok(),
            "{}",
            S::supports(&circuit).unwrap_err()
        );
        let program = S::compile(&circuit);
        ShotPlan {
            circuit,
            initial,
            shots,
            root_seed,
            program,
        }
    }

    /// The circuit this plan plays.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The initial state each shot starts from.
    pub fn initial(&self) -> &S {
        &self.initial
    }

    /// Number of repetitions.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Root seed; shot `i` runs on stream `derive_stream_seed(root, i)`.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The backend program compiled once at plan construction.
    pub fn program(&self) -> &S::Program {
        &self.program
    }
}

/// Resolved observability handles: the engine's execution timings.
#[derive(Clone)]
struct EngineObs {
    /// Wall time of each claimed shot chunk (and of each single-worker
    /// ranged fold).
    chunk: obs::Histo,
    /// Wall time of each amp-parallel shot.
    amp_shot: obs::Histo,
    /// Per-kernel apply times on the amp path, mirrored from
    /// `qsim::amp::kernel_clock`.
    amp_kernel: obs::Histo,
}

/// The shot-execution engine: a configured worker pool over which every
/// sampling workload in the workspace runs. See the crate docs for the
/// determinism contract.
#[derive(Clone, Default)]
pub struct Engine {
    config: EngineConfig,
    obs: Option<EngineObs>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("obs", &self.obs.as_ref().map(|_| "..."))
            .finish()
    }
}

impl Engine {
    /// An engine with an explicit configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config, obs: None }
    }

    /// A copy of this engine that times execution into `registry`:
    /// per-chunk fold times (`engine.chunk`), amp-parallel shot
    /// latencies (`engine.amp_shot`), and the amp path's per-kernel
    /// apply times (`engine.amp_kernel`, mirrored from
    /// `qsim::amp::kernel_clock`). Timing is observation only — every
    /// tally stays bit-identical to the unobserved engine's.
    pub fn with_metrics(mut self, registry: &obs::Registry) -> Engine {
        self.obs = Some(EngineObs {
            chunk: registry.histo("engine.chunk"),
            amp_shot: registry.histo("engine.amp_shot"),
            amp_kernel: registry.histo("engine.amp_kernel"),
        });
        self
    }

    /// An engine configured from `COMPAS_THREADS` / `--threads` /
    /// `COMPAS_CHUNK` (see [`EngineConfig::from_env`]).
    pub fn from_env() -> Self {
        Engine::new(EngineConfig::from_env())
    }

    /// A single-threaded engine (the sequential reference path).
    pub fn sequential() -> Self {
        Engine::new(EngineConfig::single_threaded())
    }

    /// An engine with exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Engine::new(EngineConfig::with_threads(threads))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Whether shots on backend `S` over a `num_qubits`-wide state run
    /// amp-parallel (one shot at a time, its amplitude space split
    /// across [`EngineConfig::amp_threads`]) instead of shot-parallel.
    /// Pure policy on [`EngineConfig::amp_engaged`] and the backend's
    /// `SimState::AMP_PARALLEL` capability: engaging never changes a
    /// tally, only the latency of big single shots.
    pub fn amp_engaged<S: SimState>(&self, num_qubits: usize) -> bool {
        self.config.amp_engaged(S::AMP_PARALLEL, num_qubits)
    }

    /// The core primitive: folds `shots` independent shots into an
    /// accumulator, in parallel. Equivalent to
    /// [`Engine::run_fold_range_with`] over `0..shots`.
    ///
    /// Each worker builds its own workspace with `make_ws` (reused
    /// scratch buffers — statevectors, bit registers) and its own
    /// accumulator with `init`; `step` folds one shot into the
    /// accumulator using the shot's private RNG stream; worker
    /// accumulators are combined with `merge` at the single join point.
    ///
    /// **Determinism contract:** `step`'s contribution must depend only
    /// on `(shot index, its RNG stream)` and merging must be
    /// commutative and associative (counts, histograms, integer sums).
    /// Then the result is identical at every thread count.
    pub fn run_fold_with<W, A, MW, IA, F, M>(
        &self,
        shots: u64,
        root_seed: u64,
        make_ws: MW,
        init: IA,
        step: F,
        merge: M,
    ) -> A
    where
        W: Send,
        A: Send,
        MW: Fn() -> W + Sync,
        IA: Fn() -> A + Sync,
        F: Fn(&mut A, &mut W, u64, &mut StdRng) + Sync,
        M: Fn(A, A) -> A,
    {
        self.run_fold_range_with(0..shots, root_seed, make_ws, init, step, merge)
    }

    /// Ranged variant of [`Engine::run_fold_with`]: folds the **global**
    /// shot indices `range` of a job rooted at `root_seed`.
    ///
    /// Shot `i` runs on `shot_rng(root_seed, i)` — the same stream it
    /// would use in a full `0..shots` run — so executing a partition of
    /// `0..shots` as separate ranged calls and merging the results is
    /// **bit-identical** to the single full call, at any thread count
    /// and any partition. This is the primitive behind the serving
    /// layer's shot-slicing: a large job is sliced into ranges for
    /// fairness across clients without changing a single record.
    pub fn run_fold_range_with<W, A, MW, IA, F, M>(
        &self,
        range: std::ops::Range<u64>,
        root_seed: u64,
        make_ws: MW,
        init: IA,
        step: F,
        merge: M,
    ) -> A
    where
        W: Send,
        A: Send,
        MW: Fn() -> W + Sync,
        IA: Fn() -> A + Sync,
        F: Fn(&mut A, &mut W, u64, &mut StdRng) + Sync,
        M: Fn(A, A) -> A,
    {
        let total = range.end.saturating_sub(range.start);
        let chunk = self.config.chunk_size.max(1);
        let num_chunks = total.div_ceil(chunk);
        let workers = self.config.threads.min(num_chunks.max(1) as usize).max(1);
        let chunk_histo = self.obs.as_ref().map(|o| o.chunk.clone());

        if workers == 1 {
            let started = chunk_histo.as_ref().map(|_| std::time::Instant::now());
            let mut acc = init();
            let mut ws = make_ws();
            for shot in range {
                let mut rng = shot_rng(root_seed, shot);
                step(&mut acc, &mut ws, shot, &mut rng);
            }
            if let (Some(histo), Some(started)) = (&chunk_histo, started) {
                histo.record_duration(started.elapsed());
            }
            return acc;
        }

        let cursor = AtomicU64::new(0);
        let worker_accs: Vec<A> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut acc = init();
                        let mut ws = make_ws();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= num_chunks {
                                break;
                            }
                            let started = chunk_histo.as_ref().map(|_| std::time::Instant::now());
                            let start = range.start + c * chunk;
                            let end = (start + chunk).min(range.end);
                            for shot in start..end {
                                let mut rng = shot_rng(root_seed, shot);
                                step(&mut acc, &mut ws, shot, &mut rng);
                            }
                            if let (Some(histo), Some(started)) = (&chunk_histo, started) {
                                histo.record_duration(started.elapsed());
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });
        worker_accs.into_iter().reduce(merge).unwrap_or_else(init)
    }

    /// Counts the shots for which `pred` holds. The workhorse behind
    /// fidelity estimates (fraction of "good" trajectories).
    pub fn run_count_with<W, MW, F>(&self, shots: u64, root_seed: u64, make_ws: MW, pred: F) -> u64
    where
        W: Send,
        MW: Fn() -> W + Sync,
        F: Fn(&mut W, u64, &mut StdRng) -> bool + Sync,
    {
        self.run_fold_with(
            shots,
            root_seed,
            make_ws,
            || 0u64,
            |acc, ws, shot, rng| *acc += u64::from(pred(ws, shot, rng)),
            |a, b| a + b,
        )
    }

    /// Workspace-free variant of [`Engine::run_count_with`].
    pub fn run_count<F>(&self, shots: u64, root_seed: u64, pred: F) -> u64
    where
        F: Fn(u64, &mut StdRng) -> bool + Sync,
    {
        self.run_count_with(shots, root_seed, || (), |(), shot, rng| pred(shot, rng))
    }

    /// Histograms one key per shot. The workhorse behind residual-error
    /// distributions and outcome tallies.
    pub fn run_tally_with<K, W, MW, F>(
        &self,
        shots: u64,
        root_seed: u64,
        make_ws: MW,
        key_of: F,
    ) -> HashMap<K, u64>
    where
        K: Eq + Hash + Send,
        W: Send,
        MW: Fn() -> W + Sync,
        F: Fn(&mut W, u64, &mut StdRng) -> K + Sync,
    {
        self.run_fold_with(
            shots,
            root_seed,
            make_ws,
            HashMap::new,
            |acc, ws, shot, rng| *acc.entry(key_of(ws, shot, rng)).or_insert(0) += 1,
            merge_tallies,
        )
    }

    /// Workspace-free variant of [`Engine::run_tally_with`].
    pub fn run_tally<K, F>(&self, shots: u64, root_seed: u64, key_of: F) -> HashMap<K, u64>
    where
        K: Eq + Hash + Send,
        F: Fn(u64, &mut StdRng) -> K + Sync,
    {
        self.run_tally_with(shots, root_seed, || (), |(), shot, rng| key_of(shot, rng))
    }

    /// Ranged variant of [`Engine::run_tally_with`]: histograms the
    /// global shot indices `range` only. Merging the tallies of a
    /// partition of `0..shots` is bit-identical to the full call (see
    /// [`Engine::run_fold_range_with`]).
    pub fn run_tally_range_with<K, W, MW, F>(
        &self,
        range: std::ops::Range<u64>,
        root_seed: u64,
        make_ws: MW,
        key_of: F,
    ) -> HashMap<K, u64>
    where
        K: Eq + Hash + Send,
        W: Send,
        MW: Fn() -> W + Sync,
        F: Fn(&mut W, u64, &mut StdRng) -> K + Sync,
    {
        self.run_fold_range_with(
            range,
            root_seed,
            make_ws,
            HashMap::new,
            |acc, ws, shot, rng| *acc.entry(key_of(ws, shot, rng)).or_insert(0) += 1,
            merge_tallies,
        )
    }

    /// Executes one [`ShotPlan`] on its backend, reusing one state
    /// buffer and one classical register per worker and replaying the
    /// plan's compiled program each shot. Returns counts in the
    /// `sample_shots` convention.
    pub fn run_plan<S: SimState>(&self, plan: &ShotPlan<S>) -> Counts {
        self.run_plan_range(plan, 0..plan.shots)
    }

    /// Executes the global shot indices `range` of a [`ShotPlan`] —
    /// the serving layer's slice primitive. Merging the counts of a
    /// partition of `0..plan.shots()` reproduces [`Engine::run_plan`]
    /// bit-identically, because shot `i`'s stream depends only on the
    /// plan's root seed and `i`.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches beyond the plan's shot count.
    pub fn run_plan_range<S: SimState>(
        &self,
        plan: &ShotPlan<S>,
        range: std::ops::Range<u64>,
    ) -> Counts {
        assert!(
            range.end <= plan.shots,
            "slice {}..{} exceeds the plan's {} shots",
            range.start,
            range.end,
            plan.shots
        );
        if self.amp_engaged::<S>(plan.initial.num_qubits()) {
            return self.run_plan_range_amp(plan, range);
        }
        let tally = self.run_tally_range_with(
            range,
            plan.root_seed,
            || (plan.initial.clone(), Vec::new()),
            |(state, cbits), _shot, rng| {
                run_program_into(&plan.program, &plan.initial, state, cbits, rng);
                pack_cbits(cbits)
            },
        );
        tally.into_iter().map(|(k, v)| (k, v as usize)).collect()
    }

    /// Amp-parallel body of [`Engine::run_plan_range`]: shots run in
    /// order on the calling thread, each splitting its amplitude space
    /// across [`EngineConfig::amp_threads`] workers. Shot `i` still
    /// runs on `shot_rng(root_seed, i)` and each amp-parallel shot is
    /// bit-identical to its sequential replay, so the counts equal the
    /// shot-parallel path's exactly — at any thread count, and under
    /// any range partition.
    fn run_plan_range_amp<S: SimState>(
        &self,
        plan: &ShotPlan<S>,
        range: std::ops::Range<u64>,
    ) -> Counts {
        let amp_threads = self.config.amp_threads;
        // Baseline of qsim's process-wide kernel clock; the delta over
        // this call mirrors into `engine.amp_kernel` afterwards.
        let kernel_base = self
            .obs
            .as_ref()
            .map(|_| qsim::amp::kernel_clock::snapshot());
        let mut counts = Counts::new();
        let mut state = plan.initial.clone();
        let mut cbits = Vec::new();
        for shot in range {
            let started = self.obs.as_ref().map(|_| std::time::Instant::now());
            let mut rng = shot_rng(plan.root_seed, shot);
            run_program_into_parallel(
                &plan.program,
                &plan.initial,
                &mut state,
                &mut cbits,
                &mut rng,
                amp_threads,
            );
            if let (Some(obs), Some(started)) = (&self.obs, started) {
                obs.amp_shot.record_duration(started.elapsed());
            }
            *counts.entry(pack_cbits(&cbits)).or_insert(0) += 1;
        }
        if let (Some(obs), Some((base_buckets, base_sum))) = (&self.obs, kernel_base) {
            let (now_buckets, now_sum) = qsim::amp::kernel_clock::snapshot();
            for (b, &base) in base_buckets.iter().enumerate() {
                let added = now_buckets[b].saturating_sub(base);
                if added > 0 {
                    obs.amp_kernel.add_bucket(b, added, 0);
                }
            }
            obs.amp_kernel
                .add_bucket(0, 0, now_sum.saturating_sub(base_sum));
        }
        counts
    }

    /// Traced twin of the ranged tally primitive: histograms the packed
    /// record `record_of` produces for each global shot index in
    /// `range`, **and** delivers one [`ShotRecord`] per shot to `sink`
    /// (packed record, RNG stream id, wall-clock nanoseconds).
    ///
    /// The returned counts are bit-identical to the untraced run —
    /// tracing observes the fold without perturbing it: each shot still
    /// runs on `shot_rng(root_seed, shot)`, and records are buffered
    /// per worker (flushed in batches) so the sink never serializes the
    /// shot loop. Records arrive at the sink in unspecified order;
    /// every index in `range` appears exactly once.
    pub fn run_record_range_traced<W, MW, F>(
        &self,
        range: std::ops::Range<u64>,
        root_seed: u64,
        make_ws: MW,
        record_of: F,
        sink: &dyn TraceSink,
    ) -> Counts
    where
        W: Send,
        MW: Fn() -> W + Sync,
        F: Fn(&mut W, u64, &mut StdRng) -> u64 + Sync,
    {
        let (tally, mut buffer) = self.run_fold_range_with(
            range,
            root_seed,
            make_ws,
            || (HashMap::<u64, u64>::new(), TraceBuffer::new(sink)),
            |(tally, buffer), ws, shot, rng| {
                let t0 = std::time::Instant::now();
                let record = record_of(ws, shot, rng);
                let nanos = t0.elapsed().as_nanos() as u64;
                buffer.push(ShotRecord {
                    shot,
                    record,
                    stream: derive_stream_seed(root_seed, shot),
                    nanos,
                });
                *tally.entry(record).or_insert(0) += 1;
            },
            |(tally_a, mut buffer_a), (tally_b, mut buffer_b)| {
                // Worker accumulators join exactly once; flush both
                // sides so no worker's tail batch is dropped.
                buffer_a.flush();
                buffer_b.flush();
                (merge_tallies(tally_a, tally_b), buffer_a)
            },
        );
        // The single-worker path never reaches the merge closure, and
        // even the merged accumulator may hold a post-merge tail.
        buffer.flush();
        tally
            .into_iter()
            .map(|(k, v)| (k as usize, v as usize))
            .collect()
    }

    /// Traced twin of [`Engine::run_plan_range`]: identical counts,
    /// plus one [`ShotRecord`] per executed shot delivered to `sink`.
    ///
    /// Tracing keeps shot-level parallelism even when the amp-parallel
    /// policy would engage — per-shot wall-clock timing is part of the
    /// trace, and a barriered fork/join inside each shot would distort
    /// it. (Amp-parallel traced replay is a recorded follow-on.)
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches beyond the plan's shot count.
    pub fn run_plan_range_traced<S: SimState>(
        &self,
        plan: &ShotPlan<S>,
        range: std::ops::Range<u64>,
        sink: &dyn TraceSink,
    ) -> Counts {
        assert!(
            range.end <= plan.shots,
            "slice {}..{} exceeds the plan's {} shots",
            range.start,
            range.end,
            plan.shots
        );
        self.run_record_range_traced(
            range,
            plan.root_seed,
            || (plan.initial.clone(), Vec::new()),
            |(state, cbits), _shot, rng| {
                run_program_into(&plan.program, &plan.initial, state, cbits, rng);
                pack_cbits(cbits) as u64
            },
            sink,
        )
    }
}

/// Commutative merge of two histograms.
pub(crate) fn merge_tallies<K: Eq + Hash>(
    mut a: HashMap<K, u64>,
    b: HashMap<K, u64>,
) -> HashMap<K, u64> {
    for (k, v) in b {
        *a.entry(k).or_insert(0) += v;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn count_is_thread_invariant() {
        // Count "first uniform < 0.3" over 10_000 seeded streams.
        let run = |threads| {
            Engine::with_threads(threads).run_count(10_000, 99, |_, rng| rng.random::<f64>() < 0.3)
        };
        let c1 = run(1);
        assert_eq!(c1, run(2));
        assert_eq!(c1, run(8));
        let frac = c1 as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn tally_is_thread_invariant() {
        let run = |threads| {
            Engine::with_threads(threads).run_tally(5_000, 5, |_, rng| rng.random_range(0..10u32))
        };
        let t1 = run(1);
        assert_eq!(t1, run(4));
        assert_eq!(t1.values().sum::<u64>(), 5_000);
    }

    #[test]
    fn zero_shots_is_empty() {
        let t = Engine::with_threads(4).run_tally(0, 1, |_, rng| rng.random_range(0..4u32));
        assert!(t.is_empty());
        assert_eq!(Engine::sequential().run_count(0, 1, |_, _| true), 0);
    }

    #[test]
    fn fold_uses_worker_workspaces() {
        // The workspace carries a scratch Vec; the fold counts its reuse.
        let engine = Engine::new(EngineConfig {
            threads: 3,
            chunk_size: 16,
            ..EngineConfig::default()
        });
        let total = engine.run_fold_with(
            1_000,
            0,
            Vec::<u64>::new,
            || 0u64,
            |acc, scratch, shot, _rng| {
                scratch.push(shot);
                *acc += 1;
            },
            |a, b| a + b,
        );
        assert_eq!(total, 1_000);
    }

    #[test]
    fn ranged_slices_merge_to_the_full_run() {
        // Any partition of 0..shots into ranged calls must reproduce
        // the single full call bit-identically — the serving layer's
        // shot-slicing correctness condition.
        let engine = Engine::with_threads(3);
        let key = |_: &mut (), _: u64, rng: &mut StdRng| rng.random_range(0..32u32);
        let full = engine.run_tally_with(10_000, 7, || (), key);
        for slice in [1u64, 7, 256, 4096, 10_000] {
            let mut merged: HashMap<u32, u64> = HashMap::new();
            let mut start = 0u64;
            while start < 10_000 {
                let end = (start + slice).min(10_000);
                let part = engine.run_tally_range_with(start..end, 7, || (), key);
                merged = merge_tallies(merged, part);
                start = end;
            }
            assert_eq!(merged, full, "slice size {slice} diverged");
        }
        // An empty range contributes nothing.
        assert!(engine.run_tally_range_with(5..5, 7, || (), key).is_empty());
    }

    #[test]
    fn run_plan_range_slices_are_bit_identical() {
        use circuit::circuit::Circuit;
        use qsim::statevector::StateVector;
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let plan = ShotPlan::new(c, StateVector::new(2), 1_000, 13);
        let engine = Engine::with_threads(2);
        let full = engine.run_plan(&plan);
        let mut merged = Counts::new();
        for start in (0..1_000).step_by(173) {
            let end = (start + 173).min(1_000);
            for (k, v) in engine.run_plan_range(&plan, start..end) {
                *merged.entry(k).or_insert(0) += v;
            }
        }
        assert_eq!(merged, full);
    }

    #[test]
    #[should_panic(expected = "exceeds the plan's")]
    fn run_plan_range_rejects_overlong_ranges() {
        use circuit::circuit::Circuit;
        use qsim::statevector::StateVector;
        let plan = ShotPlan::new(Circuit::new(1, 0), StateVector::new(1), 10, 0);
        Engine::sequential().run_plan_range(&plan, 5..11);
    }

    #[test]
    fn shot_streams_do_not_depend_on_chunking() {
        let coarse = Engine::new(EngineConfig {
            threads: 4,
            chunk_size: 1024,
            ..EngineConfig::default()
        });
        let fine = Engine::new(EngineConfig {
            threads: 4,
            chunk_size: 7,
            ..EngineConfig::default()
        });
        let f = |_: u64, rng: &mut StdRng| rng.random_range(0..100u8);
        assert_eq!(coarse.run_tally(3_000, 11, f), fine.run_tally(3_000, 11, f));
    }
}
