//! Deterministic per-stream seed derivation.

use rand::rngs::StdRng;
use rand::{split_mix64, SeedableRng};

/// Derives the seed of stream `index` under `root` by avalanching both
/// words through SplitMix64. Used for per-shot streams (`index` = shot)
/// and for sub-jobs (`index` = job position), so nested derivations
/// (`job seed → shot seed`) stay decorrelated.
///
/// The derivation is a pure function of `(root, index)`: which thread
/// runs a shot, or in what order, can never change its stream.
pub fn derive_stream_seed(root: u64, index: u64) -> u64 {
    // Offset the index by a golden-ratio multiple before mixing so that
    // (root, 0) differs from (root ^ x, y) collisions of the trivial XOR.
    let mut state = root ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C909;
    let a = split_mix64(&mut state);
    state ^= a.rotate_left(17);
    split_mix64(&mut state)
}

/// The RNG driving shot `shot` of a job rooted at `root`.
pub fn shot_rng(root: u64, shot: u64) -> StdRng {
    StdRng::seed_from_u64(derive_stream_seed(root, shot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeds_are_pure_functions() {
        assert_eq!(derive_stream_seed(1, 2), derive_stream_seed(1, 2));
        assert_eq!(shot_rng(9, 100).next_u64(), shot_rng(9, 100).next_u64());
    }

    #[test]
    fn nearby_indices_decorrelate() {
        let mut seen = std::collections::HashSet::new();
        for root in 0..8u64 {
            for shot in 0..1024u64 {
                assert!(
                    seen.insert(derive_stream_seed(root, shot)),
                    "collision at root={root} shot={shot}"
                );
            }
        }
    }

    #[test]
    fn shot_zero_differs_from_root_stream() {
        // Stream 0 must not alias the root used directly as a seed.
        assert_ne!(derive_stream_seed(42, 0), 42);
    }
}
