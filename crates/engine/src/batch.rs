//! Batched execution of many independent sampling jobs.

use qsim::runner::{pack_cbits, run_program_into};
use qsim::sim::SimState;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::{merge_tallies, Counts, Engine, ShotPlan};
use crate::seed::{derive_stream_seed, shot_rng};
use crate::trace::{ShotRecord, TraceBuffer, TraceSink};

/// One independent sampling job a [`BatchRunner`] can execute: a shot
/// count, a root seed, and a per-shot kernel producing a histogram key.
///
/// Implementations exist for [`ShotPlan`] over any [`SimState`] backend
/// (shots keyed by the packed classical register) and are trivial to
/// add for other samplers (Pauli-frame residuals, bit-level models):
/// the kernel only needs to be a pure function of its workspace, shot
/// index, and RNG stream.
pub trait ShotJob: Sync {
    /// Histogram key produced by one shot.
    type Key: Eq + Hash + Send;
    /// Reused per-worker scratch state (buffers); `()` if none.
    type Workspace: Send;

    /// Number of shots this job runs.
    fn shots(&self) -> u64;

    /// Root seed; shot `i` runs on stream `derive_stream_seed(root, i)`.
    fn root_seed(&self) -> u64;

    /// Builds one worker's scratch state for this job.
    fn workspace(&self) -> Self::Workspace;

    /// Runs shot `shot` and returns its histogram key.
    fn run_shot(&self, ws: &mut Self::Workspace, shot: u64, rng: &mut StdRng) -> Self::Key;
}

impl<S: SimState> ShotJob for ShotPlan<S> {
    type Key = usize;
    type Workspace = (S, Vec<bool>);

    fn shots(&self) -> u64 {
        ShotPlan::shots(self)
    }

    fn root_seed(&self) -> u64 {
        ShotPlan::root_seed(self)
    }

    fn workspace(&self) -> Self::Workspace {
        (self.initial().clone(), Vec::new())
    }

    fn run_shot(
        &self,
        (state, cbits): &mut Self::Workspace,
        _shot: u64,
        rng: &mut StdRng,
    ) -> usize {
        run_program_into(self.program(), self.initial(), state, cbits, rng);
        pack_cbits(cbits)
    }
}

/// Executes many independent [`ShotJob`]s concurrently through one
/// shared worker pool: all jobs' chunks go into a single work list, so
/// a batch of unevenly sized jobs (the usual shape — one job per noise
/// point or table row) still keeps every worker busy until the end.
///
/// Results are per-job histograms, bit-identical at any thread count
/// (see the crate docs for the determinism contract).
#[derive(Debug, Clone)]
pub struct BatchRunner<'e> {
    engine: &'e Engine,
}

/// One claimable unit of work: a shot range of one job.
struct Unit {
    job: usize,
    start: u64,
    end: u64,
}

impl<'e> BatchRunner<'e> {
    /// A runner over `engine`'s worker pool.
    pub fn new(engine: &'e Engine) -> Self {
        BatchRunner { engine }
    }

    /// Runs every job and returns one histogram per job, in order.
    pub fn run_batch<J: ShotJob>(&self, jobs: &[J]) -> Vec<HashMap<J::Key, u64>> {
        let chunk = self.engine.config().chunk_size.max(1);
        let mut units = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            let mut start = 0;
            while start < job.shots() {
                let end = (start + chunk).min(job.shots());
                units.push(Unit {
                    job: ji,
                    start,
                    end,
                });
                start = end;
            }
        }
        let workers = self.engine.threads().min(units.len().max(1));

        let run_worker = |cursor: &AtomicUsize| {
            let mut tallies: Vec<HashMap<J::Key, u64>> =
                (0..jobs.len()).map(|_| HashMap::new()).collect();
            let mut workspaces: Vec<Option<J::Workspace>> = (0..jobs.len()).map(|_| None).collect();
            loop {
                let u = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(u) else { break };
                let job = &jobs[unit.job];
                let ws = workspaces[unit.job].get_or_insert_with(|| job.workspace());
                let root = job.root_seed();
                for shot in unit.start..unit.end {
                    let mut rng = shot_rng(root, shot);
                    let key = job.run_shot(ws, shot, &mut rng);
                    *tallies[unit.job].entry(key).or_insert(0) += 1;
                }
            }
            tallies
        };

        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<HashMap<J::Key, u64>>> = if workers == 1 {
            vec![run_worker(&cursor)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(|| run_worker(&cursor)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            })
        };

        let mut merged: Vec<HashMap<J::Key, u64>> =
            (0..jobs.len()).map(|_| HashMap::new()).collect();
        for tallies in per_worker {
            for (ji, t) in tallies.into_iter().enumerate() {
                let acc = std::mem::take(&mut merged[ji]);
                merged[ji] = merge_tallies(acc, t);
            }
        }
        merged
    }

    /// Runs a batch of [`ShotPlan`]s (any one [`SimState`] backend),
    /// returning counts in the `sample_shots` convention, one per plan.
    pub fn run_plans<S: SimState>(&self, plans: &[ShotPlan<S>]) -> Vec<Counts> {
        self.run_batch(plans)
            .into_iter()
            .map(|t| t.into_iter().map(|(k, v)| (k, v as usize)).collect())
            .collect()
    }

    /// Traced twin of [`BatchRunner::run_batch`]: identical per-job
    /// histograms, plus one [`ShotRecord`] per executed shot delivered
    /// to that job's sink in `sinks` (indexed like `jobs` — shot indices
    /// are per-job, so each job needs its own sink). `encode` packs a
    /// job's histogram key into the record's `u64` payload (identity
    /// cast for packed-register keys).
    ///
    /// # Panics
    ///
    /// Panics if `sinks.len() != jobs.len()`.
    pub fn run_batch_traced<J: ShotJob, E>(
        &self,
        jobs: &[J],
        encode: E,
        sinks: &[&dyn TraceSink],
    ) -> Vec<HashMap<J::Key, u64>>
    where
        E: Fn(&J::Key) -> u64 + Sync,
    {
        assert_eq!(
            sinks.len(),
            jobs.len(),
            "one trace sink per job ({} sinks for {} jobs)",
            sinks.len(),
            jobs.len()
        );
        let chunk = self.engine.config().chunk_size.max(1);
        let mut units = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            let mut start = 0;
            while start < job.shots() {
                let end = (start + chunk).min(job.shots());
                units.push(Unit {
                    job: ji,
                    start,
                    end,
                });
                start = end;
            }
        }
        let workers = self.engine.threads().min(units.len().max(1));

        let run_worker = |cursor: &AtomicUsize| {
            let mut tallies: Vec<HashMap<J::Key, u64>> =
                (0..jobs.len()).map(|_| HashMap::new()).collect();
            let mut workspaces: Vec<Option<J::Workspace>> = (0..jobs.len()).map(|_| None).collect();
            let mut buffers: Vec<TraceBuffer> =
                sinks.iter().map(|s| TraceBuffer::new(*s)).collect();
            loop {
                let u = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(u) else { break };
                let job = &jobs[unit.job];
                let ws = workspaces[unit.job].get_or_insert_with(|| job.workspace());
                let root = job.root_seed();
                for shot in unit.start..unit.end {
                    let mut rng = shot_rng(root, shot);
                    let t0 = std::time::Instant::now();
                    let key = job.run_shot(ws, shot, &mut rng);
                    let nanos = t0.elapsed().as_nanos() as u64;
                    buffers[unit.job].push(ShotRecord {
                        shot,
                        record: encode(&key),
                        stream: derive_stream_seed(root, shot),
                        nanos,
                    });
                    *tallies[unit.job].entry(key).or_insert(0) += 1;
                }
            }
            for buffer in &mut buffers {
                buffer.flush();
            }
            tallies
        };

        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<HashMap<J::Key, u64>>> = if workers == 1 {
            vec![run_worker(&cursor)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(|| run_worker(&cursor)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            })
        };

        let mut merged: Vec<HashMap<J::Key, u64>> =
            (0..jobs.len()).map(|_| HashMap::new()).collect();
        for tallies in per_worker {
            for (ji, t) in tallies.into_iter().enumerate() {
                let acc = std::mem::take(&mut merged[ji]);
                merged[ji] = merge_tallies(acc, t);
            }
        }
        merged
    }
}

/// Shared test fixture: a biased-coin [`ShotJob`] exercised by this
/// module's and [`crate::experiment`]'s test suites.
#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::ShotJob;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub(crate) struct CoinJob {
        pub(crate) bias: f64,
        pub(crate) shots: u64,
        pub(crate) seed: u64,
    }

    impl ShotJob for CoinJob {
        type Key = bool;
        type Workspace = ();

        fn shots(&self) -> u64 {
            self.shots
        }
        fn root_seed(&self) -> u64 {
            self.seed
        }
        fn workspace(&self) {}
        fn run_shot(&self, _ws: &mut (), _shot: u64, rng: &mut StdRng) -> bool {
            rng.random::<f64>() < self.bias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::CoinJob;
    use super::*;
    use circuit::circuit::Circuit;
    use qsim::statevector::StateVector;

    #[test]
    fn batch_results_are_per_job_and_thread_invariant() {
        let jobs: Vec<CoinJob> = (0..5)
            .map(|i| CoinJob {
                bias: 0.1 + 0.15 * i as f64,
                shots: 4_000 + 500 * i,
                seed: 1000 + i,
            })
            .collect();
        let run = |threads: usize| {
            let engine = Engine::with_threads(threads);
            BatchRunner::new(&engine).run_batch(&jobs)
        };
        let r1 = run(1);
        assert_eq!(r1, run(3));
        assert_eq!(r1, run(8));
        for (job, tally) in jobs.iter().zip(&r1) {
            let total: u64 = tally.values().sum();
            assert_eq!(total, job.shots);
            let frac = *tally.get(&true).unwrap_or(&0) as f64 / total as f64;
            assert!((frac - job.bias).abs() < 0.03, "bias {}: {frac}", job.bias);
        }
    }

    #[test]
    fn plan_batch_matches_single_plan_runs() {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let engine = Engine::with_threads(4);
        let plans: Vec<ShotPlan> = (0..3)
            .map(|i| ShotPlan::new(c.clone(), StateVector::new(2), 600, 40 + i))
            .collect();
        let batched = BatchRunner::new(&engine).run_plans(&plans);
        for (plan, counts) in plans.iter().zip(&batched) {
            assert_eq!(counts, &engine.run_plan(plan));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::with_threads(4);
        let no_plans: &[ShotPlan] = &[];
        assert!(BatchRunner::new(&engine).run_plans(no_plans).is_empty());
    }
}
