//! Shot-trace recording hooks.
//!
//! A [`TraceSink`] observes per-shot execution without participating in
//! it: the traced engine entry points ([`Engine::run_record_range_traced`],
//! [`Engine::run_plan_range_traced`], [`Executor::sample_shots_traced`],
//! [`Backend::sample_shots_traced`], [`BatchRunner::run_batch_traced`])
//! produce exactly the counts their untraced twins produce — bit for
//! bit, at any thread count — and additionally deliver one
//! [`ShotRecord`] per executed shot to the sink. Workers buffer records
//! locally and flush in batches, so a sink sees each shot exactly once
//! but in no particular order; consumers that need shot order sort by
//! [`ShotRecord::shot`] (the `.cst` writer in `crates/trace` does).
//!
//! The trait lives here — below every layer that records — so the
//! service scheduler, the shard coordinator, and the trace crate can all
//! share one hook type without a dependency cycle.
//!
//! [`Engine::run_record_range_traced`]: crate::Engine::run_record_range_traced
//! [`Engine::run_plan_range_traced`]: crate::Engine::run_plan_range_traced
//! [`Executor::sample_shots_traced`]: crate::Executor::sample_shots_traced
//! [`Backend::sample_shots_traced`]: crate::Backend::sample_shots_traced
//! [`BatchRunner::run_batch_traced`]: crate::BatchRunner::run_batch_traced

use std::sync::Mutex;

/// One executed shot, as observed by a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShotRecord {
    /// Global shot index within the job (`0..shots`).
    pub shot: u64,
    /// The packed classical register the shot produced (the same
    /// `pack_cbits` integer the tally is keyed by).
    pub record: u64,
    /// The shot's RNG stream id, `derive_stream_seed(root_seed, shot)`.
    /// Recorded rather than recomputed at read time so a regression in
    /// the seed-derivation function breaks golden traces loudly.
    pub stream: u64,
    /// Wall-clock nanoseconds the shot took on its worker. Best-effort
    /// and nondeterministic; golden traces strip it.
    pub nanos: u64,
}

/// A consumer of [`ShotRecord`]s, attached to a traced engine run.
///
/// Implementations must be thread-safe: workers flush concurrently.
/// Each executed shot is delivered exactly once across all `record`
/// calls, in unspecified order. `record` runs on engine worker threads
/// — keep it cheap (append to a buffer; do I/O after the run).
pub trait TraceSink: Send + Sync {
    /// Delivers a batch of executed shots.
    fn record(&self, records: &[ShotRecord]);
}

/// A [`TraceSink`] that appends every record to an in-memory vector.
///
/// The collection point for `compas-record` and for tests: run traced,
/// then [`MemorySink::into_records`] (sorted by shot index) feeds the
/// `.cst` writer or the assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<ShotRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("sink poisoned").len()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the sink, returning all records sorted by shot index.
    pub fn into_records(self) -> Vec<ShotRecord> {
        let mut records = self.records.into_inner().expect("sink poisoned");
        records.sort_unstable_by_key(|r| r.shot);
        records
    }

    /// Clones out all records sorted by shot index, leaving the sink
    /// usable (for shared `Arc<MemorySink>` collection points).
    pub fn snapshot(&self) -> Vec<ShotRecord> {
        let mut records = self.records.lock().expect("sink poisoned").clone();
        records.sort_unstable_by_key(|r| r.shot);
        records
    }
}

impl TraceSink for MemorySink {
    fn record(&self, records: &[ShotRecord]) {
        self.records
            .lock()
            .expect("sink poisoned")
            .extend_from_slice(records);
    }
}

/// Worker-local buffer of [`ShotRecord`]s, flushed to the sink in
/// batches so tracing never takes a lock per shot.
pub(crate) struct TraceBuffer<'a> {
    sink: &'a dyn TraceSink,
    buf: Vec<ShotRecord>,
}

/// Records buffered per worker between sink flushes.
const FLUSH_CAPACITY: usize = 1024;

impl<'a> TraceBuffer<'a> {
    pub(crate) fn new(sink: &'a dyn TraceSink) -> Self {
        TraceBuffer {
            sink,
            buf: Vec::with_capacity(FLUSH_CAPACITY),
        }
    }

    pub(crate) fn push(&mut self, record: ShotRecord) {
        self.buf.push(record);
        if self.buf.len() >= FLUSH_CAPACITY {
            self.flush();
        }
    }

    pub(crate) fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.record(&self.buf);
            self.buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::batch::BatchRunner;
    use crate::executor::Executor;
    use crate::pool::{Engine, ShotPlan};
    use crate::seed::derive_stream_seed;
    use circuit::circuit::Circuit;
    use qsim::statevector::StateVector;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        c
    }

    /// Strips the nondeterministic timing field for comparisons.
    fn identity(records: &[ShotRecord]) -> Vec<(u64, u64, u64)> {
        records
            .iter()
            .map(|r| (r.shot, r.record, r.stream))
            .collect()
    }

    #[test]
    fn traced_plan_counts_match_untraced_and_records_are_complete() {
        let plan = ShotPlan::new(bell(), StateVector::new(2), 3_000, 17);
        for engine in [Engine::sequential(), Engine::with_threads(4)] {
            let sink = MemorySink::new();
            let traced = engine.run_plan_range_traced(&plan, 0..3_000, &sink);
            assert_eq!(traced, engine.run_plan(&plan));
            let records = sink.into_records();
            assert_eq!(records.len(), 3_000);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.shot, i as u64);
                assert_eq!(r.stream, derive_stream_seed(17, r.shot));
            }
            // The tally is exactly the histogram of the records.
            let mut histo = std::collections::HashMap::new();
            for r in &records {
                *histo.entry(r.record as usize).or_insert(0usize) += 1;
            }
            assert_eq!(histo, traced);
        }
    }

    #[test]
    fn traced_records_are_mode_invariant() {
        let c = bell();
        let initial = StateVector::new(2);
        let seq_sink = MemorySink::new();
        let seq = Executor::sequential(23).sample_shots_traced(&c, &initial, 2_000, &seq_sink);
        let pooled_sink = MemorySink::new();
        let pooled = Executor::pooled(Engine::with_threads(4), 23).sample_shots_traced(
            &c,
            &initial,
            2_000,
            &pooled_sink,
        );
        assert_eq!(seq, pooled);
        assert_eq!(
            identity(&seq_sink.into_records()),
            identity(&pooled_sink.into_records())
        );
    }

    #[test]
    fn traced_ranges_union_to_the_full_record_set() {
        let plan = ShotPlan::new(bell(), StateVector::new(2), 1_000, 7);
        let engine = Engine::with_threads(3);
        let full_sink = MemorySink::new();
        engine.run_plan_range_traced(&plan, 0..1_000, &full_sink);
        let sliced_sink = MemorySink::new();
        let mut start = 0;
        while start < 1_000 {
            let end = (start + 173).min(1_000);
            engine.run_plan_range_traced(&plan, start..end, &sliced_sink);
            start = end;
        }
        assert_eq!(
            identity(&full_sink.into_records()),
            identity(&sliced_sink.into_records())
        );
    }

    #[test]
    fn backend_traced_counts_match_untraced_on_every_backend() {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1);
        c.push(circuit::circuit::Instruction::Depolarizing {
            qubits: vec![0],
            p: 0.1,
        });
        c.measure(0, 0).measure(1, 1);
        let exec = Executor::pooled(Engine::with_threads(2), 31);
        for b in [Backend::StateVector, Backend::Density] {
            let sink = MemorySink::new();
            let traced = b.sample_shots_traced(&c, 500, &exec, &sink).unwrap();
            assert_eq!(traced, b.sample_shots(&c, 500, &exec).unwrap(), "{b}");
            assert_eq!(sink.len(), 500, "{b}");
        }
    }

    #[test]
    fn batch_traced_routes_records_to_the_right_sink() {
        let engine = Engine::with_threads(3);
        let plans: Vec<ShotPlan> = (0..3)
            .map(|i| ShotPlan::new(bell(), StateVector::new(2), 400 + 100 * i, 50 + i))
            .collect();
        let sinks: Vec<MemorySink> = (0..plans.len()).map(|_| MemorySink::new()).collect();
        let sink_refs: Vec<&dyn TraceSink> = sinks.iter().map(|s| s as &dyn TraceSink).collect();
        let traced = BatchRunner::new(&engine).run_batch_traced(&plans, |k| *k as u64, &sink_refs);
        let untraced = BatchRunner::new(&engine).run_batch(&plans);
        assert_eq!(traced, untraced);
        for (plan, sink) in plans.iter().zip(sinks) {
            let records = sink.into_records();
            assert_eq!(records.len(), plan.shots() as usize);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.shot, i as u64);
                assert_eq!(r.stream, derive_stream_seed(plan.root_seed(), r.shot));
            }
        }
    }
}
