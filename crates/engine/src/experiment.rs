//! Declarative construction of multi-point sampling experiments.
//!
//! Every `bench` driver has the same shape: a grid of configuration
//! points (noise level × size, scheme × width, …), a shot count, and an
//! execution context. [`ExperimentBuilder`] captures that shape once so
//! drivers declare *what* the grid is instead of hand-rolling job
//! vectors, seed bookkeeping, and result plumbing.
//!
//! ## Seed contract
//!
//! Point `i` always runs under the derived context
//! [`Executor::derive`]`(i)` — equivalently, with root seed
//! `derive_stream_seed(exec.root_seed(), i)`. A builder run is therefore
//! reproducible from one root seed and bit-identical to invoking each
//! point manually under its derived context, in any execution mode
//! (asserted by the engine's tests).

use std::collections::HashMap;

use crate::batch::ShotJob;
use crate::executor::Executor;
use crate::seed::derive_stream_seed;

/// A grid of experiment points plus a per-point shot count, executed
/// under an [`Executor`].
///
/// **Seed contract:** point `i` always runs under the derived context
/// [`Executor::derive`]`(i)` — equivalently, with root seed
/// `derive_stream_seed(exec.root_seed(), i)` — so a builder run is
/// reproducible from one root seed and bit-identical to invoking each
/// point manually under its derived context, in any execution mode.
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder<P> {
    points: Vec<P>,
    shots: usize,
}

impl<P> ExperimentBuilder<P> {
    /// An empty experiment.
    pub fn new() -> Self {
        ExperimentBuilder {
            points: Vec::new(),
            shots: 0,
        }
    }

    /// Sets the per-point shot count.
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Appends one grid point.
    pub fn point(mut self, point: P) -> Self {
        self.points.push(point);
        self
    }

    /// Appends many grid points.
    pub fn points<I: IntoIterator<Item = P>>(mut self, points: I) -> Self {
        self.points.extend(points);
        self
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluates every point, handing `eval` the point, the shot count,
    /// and the point's derived child context (`exec.derive(i)` for point
    /// `i`). Use this when a point's evaluation is itself a composite
    /// computation (e.g. a trace estimate over two measurement
    /// channels).
    pub fn run<R>(&self, exec: &Executor, eval: impl Fn(&P, usize, &Executor) -> R) -> Vec<R> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| eval(p, self.shots, &exec.derive(i as u64)))
            .collect()
    }

    /// Builds one [`ShotJob`] per point with `make(point, shots,
    /// derived_seed)` and runs the whole grid as a single batch through
    /// the executor's pool — uneven points keep every worker busy.
    /// Returns `(job, tally)` pairs in point order.
    pub fn run_jobs<J: ShotJob>(
        &self,
        exec: &Executor,
        make: impl Fn(&P, usize, u64) -> J,
    ) -> Vec<(J, HashMap<J::Key, u64>)> {
        let jobs: Vec<J> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                make(
                    p,
                    self.shots,
                    derive_stream_seed(exec.root_seed(), i as u64),
                )
            })
            .collect();
        let tallies = exec.run_batch(&jobs);
        jobs.into_iter().zip(tallies).collect()
    }
}

impl<A: Clone, B: Clone> ExperimentBuilder<(A, B)> {
    /// A two-axis grid in outer-major order: `(outer[0], inner[0]),
    /// (outer[0], inner[1]), …` — the common `sizes × noise levels`
    /// shape of the paper's tables.
    pub fn grid(outer: &[A], inner: &[B]) -> Self {
        let mut b = Self::new();
        for a in outer {
            for bb in inner {
                b = b.point((a.clone(), bb.clone()));
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::test_fixtures::CoinJob;
    use crate::pool::Engine;

    #[test]
    fn grid_is_outer_major() {
        let b = ExperimentBuilder::grid(&[1, 2], &[10, 20, 30]);
        assert_eq!(b.len(), 6);
        let pts = b.run(&Executor::sequential(0), |&p, _, _| p);
        assert_eq!(
            pts,
            vec![(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]
        );
    }

    #[test]
    fn run_hands_each_point_its_derived_context() {
        let exec = Executor::sequential(42);
        let b = ExperimentBuilder::new().points(0..4).shots(7);
        let seeds = b.run(&exec, |_, shots, child| {
            assert_eq!(shots, 7);
            child.root_seed()
        });
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, exec.derive(i as u64).root_seed());
        }
    }

    #[test]
    fn run_jobs_matches_per_point_manual_tallies_in_both_modes() {
        let biases = [0.2, 0.5, 0.8];
        let make = |&bias: &f64, shots: usize, seed: u64| CoinJob {
            bias,
            shots: shots as u64,
            seed,
        };
        let builder = ExperimentBuilder::new().points(biases).shots(3_000);
        let seq = Executor::sequential(9);
        let pooled = Executor::pooled(Engine::with_threads(4), 9);
        let batched = builder.run_jobs(&pooled, make);
        for (i, (job, tally)) in batched.iter().enumerate() {
            // Manual invocation under the point's derived context.
            let manual = seq
                .derive(i as u64)
                .run_tally(job.shots, |shot, rng| job.run_shot(&mut (), shot, rng));
            assert_eq!(tally, &manual, "point {i}");
            assert_eq!(tally.values().sum::<u64>(), 3_000);
        }
    }
}
