//! Runtime selection of the simulation backend.
//!
//! [`Backend`] is the representation-side twin of [`Executor`]: the
//! executor decides *how* shots run (sequential vs pooled), the backend
//! decides *what* simulates them (statevector, density matrix, or
//! stabilizer tableau — any [`SimState`]). Both are chosen once at the
//! boundary, so no layer above ever forks into per-backend API twins.
//!
//! [`Backend::Auto`] (the default) routes Clifford-only circuits — GHZ
//! preparation, fanout gadgets, teleportation networks — to the
//! stabilizer fast path (`O(n²)` per gate) and everything else to the
//! statevector, using the same
//! [`Circuit::required_caps`](circuit::circuit::Circuit::required_caps)
//! classification the per-backend capability probes consult. The
//! density backend is never auto-selected: it is the exact,
//! exponentially-priced reference you opt into explicitly.
//!
//! Selection knobs mirror the engine's: the `COMPAS_BACKEND`
//! environment variable or a `--backend NAME` CLI argument
//! (`auto` | `statevector` | `density` | `stabilizer`), read by
//! [`Backend::from_env`].
//!
//! Because backends route through [`Executor::sample_shots`], they
//! inherit its amplitude-level parallelism policy for free: wide
//! statevector circuits (at or above
//! [`EngineConfig::amp_threshold_qubits`](crate::EngineConfig::amp_threshold_qubits))
//! on a pooled executor automatically split each shot's amplitude
//! space across the pool instead of parallelising across shots, with
//! bit-identical tallies either way. Backends whose states cannot
//! range-split (density, stabilizer) simply never engage it
//! (`SimState::AMP_PARALLEL` is `false` for them).
//!
//! ```
//! use circuit::circuit::Circuit;
//! use engine::{Backend, Executor};
//!
//! let mut ghz = Circuit::new(3, 3);
//! ghz.h(0).cx(0, 1).cx(1, 2);
//! for q in 0..3 {
//!     ghz.measure(q, q);
//! }
//! // Clifford circuit: Auto picks the stabilizer path.
//! assert_eq!(Backend::Auto.resolve(&ghz), Backend::Stabilizer);
//! let counts = Backend::Auto
//!     .sample_shots(&ghz, 500, &Executor::sequential(7))
//!     .unwrap();
//! assert_eq!(counts.values().sum::<usize>(), 500);
//! // GHZ records are all-zeros or all-ones.
//! assert!(counts.keys().all(|&k| k == 0 || k == 0b111));
//! ```

use circuit::caps::Unsupported;
use circuit::circuit::Circuit;
use qsim::density::{run_deferred, DensityMatrix};
use qsim::runner::pack_cbits;
use qsim::sim::SimState;
use qsim::statevector::StateVector;
use stabilizer::clifford::CliffordState;

use crate::executor::Executor;
use crate::pool::Counts;
use crate::trace::TraceSink;

/// Which simulation representation plays the shots.
///
/// `#[non_exhaustive]` like [`Executor`]: future representations
/// (matrix-product states, GPU statevectors, …) extend this enum
/// instead of forking the sampling APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Backend {
    /// Route per circuit: Clifford-only circuits go to
    /// [`Backend::Stabilizer`], everything else to
    /// [`Backend::StateVector`]. The default.
    #[default]
    Auto,
    /// Statevector trajectory sampling (`qsim::statevector`) — runs the
    /// full gate set, exponential in width (≤ 26 qubits).
    StateVector,
    /// Exact deferred-measurement density-matrix evolution
    /// (`qsim::density`) — the "infinite-trajectory" reference. The
    /// state is evolved **once** per circuit; each shot then samples a
    /// classical record from the final carrier distribution.
    Density,
    /// Aaronson–Gottesman stabilizer tableau
    /// (`stabilizer::clifford::CliffordState`) — Clifford circuits
    /// only, polynomial in width.
    Stabilizer,
}

impl Backend {
    /// Parses a backend name (case-insensitive): `auto`,
    /// `statevector`/`sv`, `density`/`dm`, `stabilizer`/`clifford`.
    pub fn parse(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Backend::Auto),
            "statevector" | "sv" => Some(Backend::StateVector),
            "density" | "dm" => Some(Backend::Density),
            "stabilizer" | "clifford" => Some(Backend::Stabilizer),
            _ => None,
        }
    }

    /// Reads the backend from the process environment and CLI:
    /// `COMPAS_BACKEND` / `--backend NAME` (CLI wins). Unset or
    /// unparsable values fall back to [`Backend::Auto`], mirroring
    /// [`EngineConfig::from_env`](crate::EngineConfig::from_env).
    pub fn from_env() -> Backend {
        let mut backend = Backend::Auto;
        if let Some(b) = std::env::var("COMPAS_BACKEND")
            .ok()
            .and_then(|v| Backend::parse(&v))
        {
            backend = b;
        }
        if let Some(b) = cli_backend() {
            backend = b;
        }
        backend
    }

    /// The backend's name as accepted by [`Backend::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::Auto => "auto",
            Backend::StateVector => "statevector",
            Backend::Density => "density",
            Backend::Stabilizer => "stabilizer",
        }
    }

    /// Resolves [`Backend::Auto`] for a concrete circuit: the
    /// stabilizer path iff the circuit is Clifford-only (the shared
    /// [`Circuit::required_caps`](circuit::circuit::Circuit::required_caps)
    /// classification), the statevector otherwise. Explicit choices
    /// pass through unchanged.
    pub fn resolve(self, circuit: &Circuit) -> Backend {
        match self {
            Backend::Auto => {
                if circuit.is_clifford() {
                    Backend::Stabilizer
                } else {
                    Backend::StateVector
                }
            }
            explicit => explicit,
        }
    }

    /// Capability probe: whether this backend (after [`Backend::Auto`]
    /// routing) can execute `circuit`. Delegates to the chosen
    /// [`SimState::supports`] implementation.
    pub fn supports(self, circuit: &Circuit) -> Result<(), Unsupported> {
        match self.resolve(circuit) {
            Backend::StateVector => StateVector::supports(circuit),
            Backend::Density => DensityMatrix::supports(circuit),
            Backend::Stabilizer => CliffordState::supports(circuit),
            Backend::Auto => unreachable!("resolve never returns Auto"),
        }
    }

    /// Samples `shots` classical records of `circuit` from `|0…0⟩` on
    /// this backend under `exec`, histogramming the packed register
    /// (the `sample_shots` convention). The one runtime-dispatch
    /// boundary: everything below is the generic
    /// [`Executor::sample_shots`] loop, monomorphized per backend.
    ///
    /// Fails up front — with the typed probe error — instead of
    /// panicking mid-shot. Deterministic per backend: for one root
    /// seed, sequential and pooled executors tally identically.
    ///
    /// The density arm evolves the state **once** (its steps consume no
    /// randomness) and then draws each shot's record from the final
    /// carrier distribution on the shot's own derived stream — exactly
    /// the counts the generic per-shot loop would produce, without
    /// re-evolving `ρ` per shot.
    pub fn sample_shots(
        self,
        circuit: &Circuit,
        shots: usize,
        exec: &Executor,
    ) -> Result<Counts, Unsupported> {
        let resolved = self.resolve(circuit);
        resolved.supports(circuit)?;
        let n = circuit.num_qubits();
        Ok(match resolved {
            Backend::StateVector => exec.sample_shots(circuit, &StateVector::new(n), shots),
            Backend::Stabilizer => exec.sample_shots(circuit, &CliffordState::new(n), shots),
            Backend::Density => {
                let rho = run_deferred(circuit, &DensityMatrix::new(n));
                let num_cbits = circuit.num_cbits();
                // Workers share `&rho` — record sampling only reads the
                // final state, so the per-worker workspace is just the
                // classical register, not a clone of the (potentially
                // huge) matrix.
                let tally = exec.run_tally_with(
                    shots as u64,
                    || vec![false; num_cbits],
                    |cbits, _shot, rng| {
                        cbits.iter_mut().for_each(|b| *b = false);
                        rho.sample_record(cbits, rng);
                        pack_cbits(cbits)
                    },
                );
                tally.into_iter().map(|(k, v)| (k, v as usize)).collect()
            }
            Backend::Auto => unreachable!("resolve never returns Auto"),
        })
    }

    /// Traced twin of [`Backend::sample_shots`]: identical counts, plus
    /// one [`ShotRecord`](crate::ShotRecord) per executed shot delivered
    /// to `sink`. The density arm still evolves `ρ` once and records
    /// only the per-shot classical draw.
    pub fn sample_shots_traced(
        self,
        circuit: &Circuit,
        shots: usize,
        exec: &Executor,
        sink: &dyn TraceSink,
    ) -> Result<Counts, Unsupported> {
        let resolved = self.resolve(circuit);
        resolved.supports(circuit)?;
        let n = circuit.num_qubits();
        Ok(match resolved {
            Backend::StateVector => {
                exec.sample_shots_traced(circuit, &StateVector::new(n), shots, sink)
            }
            Backend::Stabilizer => {
                exec.sample_shots_traced(circuit, &CliffordState::new(n), shots, sink)
            }
            Backend::Density => {
                let rho = run_deferred(circuit, &DensityMatrix::new(n));
                let num_cbits = circuit.num_cbits();
                exec.engine().run_record_range_traced(
                    0..shots as u64,
                    exec.root_seed(),
                    || vec![false; num_cbits],
                    |cbits, _shot, rng| {
                        cbits.iter_mut().for_each(|b| *b = false);
                        rho.sample_record(cbits, rng);
                        pack_cbits(cbits) as u64
                    },
                    sink,
                )
            }
            Backend::Auto => unreachable!("resolve never returns Auto"),
        })
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses `--backend NAME` or `--backend=NAME` from the process
/// arguments.
fn cli_backend() -> Option<Backend> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--backend=") {
            return Backend::parse(v);
        }
        if arg == "--backend" {
            return Backend::parse(args.get(i + 1)?);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Engine;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        c
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(Backend::parse("AUTO"), Some(Backend::Auto));
        assert_eq!(Backend::parse("sv"), Some(Backend::StateVector));
        assert_eq!(Backend::parse("dm"), Some(Backend::Density));
        assert_eq!(Backend::parse(" clifford "), Some(Backend::Stabilizer));
        assert_eq!(Backend::parse("qutrit"), None);
        for b in [
            Backend::Auto,
            Backend::StateVector,
            Backend::Density,
            Backend::Stabilizer,
        ] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
    }

    #[test]
    fn auto_routes_by_cliffordness() {
        let c = bell();
        assert_eq!(Backend::Auto.resolve(&c), Backend::Stabilizer);
        let mut t = bell();
        t.t(0);
        assert_eq!(Backend::Auto.resolve(&t), Backend::StateVector);
        // Explicit choices pass through.
        assert_eq!(Backend::Density.resolve(&c), Backend::Density);
    }

    #[test]
    fn stabilizer_backend_rejects_non_clifford_up_front() {
        let mut c = bell();
        c.t(0);
        let err = Backend::Stabilizer
            .sample_shots(&c, 10, &Executor::sequential(1))
            .unwrap_err();
        assert_eq!(err.backend, "stabilizer");
        // Auto handles the same circuit by routing to the statevector.
        let counts = Backend::Auto
            .sample_shots(&c, 10, &Executor::sequential(1))
            .unwrap();
        assert_eq!(counts.values().sum::<usize>(), 10);
    }

    #[test]
    fn all_backends_sample_bell_correlations() {
        let c = bell();
        let exec = Executor::sequential(33);
        for b in [Backend::StateVector, Backend::Stabilizer, Backend::Density] {
            let counts = b.sample_shots(&c, 600, &exec).unwrap();
            assert_eq!(counts.values().sum::<usize>(), 600, "{b}");
            for key in counts.keys() {
                assert!(*key == 0 || *key == 3, "{b}: unexpected record {key}");
            }
            assert_eq!(counts.len(), 2, "{b}: both outcomes should appear");
        }
    }

    #[test]
    fn every_backend_is_mode_invariant() {
        let c = bell();
        for b in [Backend::StateVector, Backend::Stabilizer, Backend::Density] {
            let seq = b.sample_shots(&c, 2_000, &Executor::sequential(5)).unwrap();
            let pooled = b
                .sample_shots(&c, 2_000, &Executor::pooled(Engine::with_threads(4), 5))
                .unwrap();
            assert_eq!(seq, pooled, "{b} diverged across executors");
        }
    }

    #[test]
    fn density_arm_matches_the_generic_per_shot_loop() {
        // The once-evolved fast path must tally exactly what per-shot
        // deferred evolution would: same final ρ, same per-shot record
        // draw on the same stream.
        let mut c = Circuit::new(2, 1);
        c.h(0);
        c.push(circuit::circuit::Instruction::Depolarizing {
            qubits: vec![0],
            p: 0.2,
        });
        c.cx(0, 1);
        c.measure(0, 0);
        let exec = Executor::sequential(21);
        let fast = Backend::Density.sample_shots(&c, 300, &exec).unwrap();
        let generic = exec.sample_shots(&c, &DensityMatrix::new(2), 300);
        assert_eq!(fast, generic);
    }

    #[test]
    fn density_backend_rejects_measured_qubit_reuse() {
        let mut c = Circuit::new(1, 2);
        c.measure(0, 0).h(0).measure(0, 1);
        let err = Backend::Density
            .sample_shots(&c, 10, &Executor::sequential(1))
            .unwrap_err();
        assert_eq!(err.backend, "density");
    }
}
