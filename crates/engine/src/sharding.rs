//! Coordinator-side helpers for multi-machine sharding.
//!
//! A shard coordinator serves a job by splitting its global shot range
//! across N downstream workers and merging their tallies. Both halves
//! of that contract live here, next to the ranged primitives whose
//! guarantee they lean on ([`Engine::run_fold_range_with`]): because
//! shot `i`'s RNG stream is a pure function of `(root_seed, i)`,
//! executing [`partition_shots`]' sub-ranges on *any* machines and
//! folding them back with [`merge_counts`] is **bit-identical** to one
//! uninterrupted local run — re-dispatching a lost range after a worker
//! death is free, with no partial-state reconciliation.
//!
//! [`Engine::run_fold_range_with`]: crate::Engine::run_fold_range_with

use crate::pool::Counts;
use std::ops::Range;

/// Splits the global shot indices `range` into at most `parts`
/// contiguous, non-empty sub-ranges of near-equal size (sizes differ by
/// at most one shot).
///
/// The split is a pure function of `(range, parts)`, so a coordinator
/// that re-partitions after a topology change still assigns every shot
/// index exactly once — the determinism contract cares only that the
/// sub-ranges partition `range`, not who executes them.
///
/// `parts == 0` is treated as 1; an empty `range` yields no sub-ranges.
pub fn partition_shots(range: Range<u64>, parts: usize) -> Vec<Range<u64>> {
    let total = range.end.saturating_sub(range.start);
    let parts = (parts.max(1) as u64).min(total.max(1));
    (0..parts)
        .map(|i| (range.start + i * total / parts)..(range.start + (i + 1) * total / parts))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Folds one sub-range's tallies into the accumulated counts.
///
/// Merging is commutative and associative, so sub-results may arrive in
/// any order (including a re-dispatched replacement for a lost range)
/// and the final histogram is independent of completion order.
pub fn merge_counts(acc: &mut Counts, part: Counts) {
    for (outcome, n) in part {
        *acc.entry(outcome).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Engine, ShotPlan};
    use circuit::circuit::Circuit;
    use qsim::statevector::StateVector;

    #[test]
    fn partition_covers_the_range_exactly_once() {
        for (range, parts) in [
            (0..1000u64, 4usize),
            (0..7, 3),
            (5..5, 4),
            (3..17, 1),
            (0..3, 8),
            (10..1010, 0),
        ] {
            let chunks = partition_shots(range.clone(), parts);
            // Contiguous, in order, covering the range exactly.
            let mut cursor = range.start;
            for chunk in &chunks {
                assert_eq!(chunk.start, cursor, "{range:?}/{parts}: gap or overlap");
                assert!(chunk.end > chunk.start, "{range:?}/{parts}: empty chunk");
                cursor = chunk.end;
            }
            assert_eq!(cursor, range.end.max(range.start));
            assert!(chunks.len() <= parts.max(1));
            // Near-equal sizes: max - min ≤ 1.
            if let (Some(min), Some(max)) = (
                chunks.iter().map(|c| c.end - c.start).min(),
                chunks.iter().map(|c| c.end - c.start).max(),
            ) {
                assert!(max - min <= 1, "{range:?}/{parts}: skewed {chunks:?}");
            }
        }
    }

    #[test]
    fn partitioned_ranged_runs_merge_to_the_full_run() {
        // The sharding correctness condition end to end: any worker
        // count reproduces the single-machine tallies bit-identically.
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2);
        for q in 0..3 {
            c.measure(q, q);
        }
        let plan = ShotPlan::new(c, StateVector::new(3), 999, 41);
        let engine = Engine::sequential();
        let full = engine.run_plan(&plan);
        for workers in [1usize, 2, 4, 7] {
            let mut merged = Counts::new();
            for chunk in partition_shots(0..999, workers) {
                merge_counts(&mut merged, engine.run_plan_range(&plan, chunk));
            }
            assert_eq!(merged, full, "{workers} shards diverged from 1 machine");
        }
    }

    #[test]
    fn zero_shot_ranges_partition_to_nothing() {
        // An empty job must produce no work units, at any worker count
        // (including the degenerate `parts == 0`).
        for parts in [0usize, 1, 2, 16] {
            assert!(partition_shots(0..0, parts).is_empty(), "parts {parts}");
            assert!(partition_shots(42..42, parts).is_empty(), "parts {parts}");
        }
    }

    #[test]
    fn fewer_shots_than_workers_yields_single_shot_ranges() {
        // 3 shots over 8 workers: exactly 3 one-shot ranges, no empty
        // assignments — a worker is never handed a vacuous request.
        let chunks = partition_shots(100..103, 8);
        assert_eq!(chunks, vec![100..101, 101..102, 102..103]);
        // One shot over many workers: one range, one shot.
        assert_eq!(partition_shots(7..8, 64), vec![7..8]);
    }

    #[test]
    fn single_shot_ranges_enumerate_the_job() {
        // Partitioning n shots into n parts is the finest split: every
        // range is one shot, in order, covering the job exactly.
        let chunks = partition_shots(10..20, 10);
        assert_eq!(chunks.len(), 10);
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(*chunk, (10 + i as u64)..(11 + i as u64));
        }
    }

    #[test]
    fn merge_is_associative_across_arbitrary_partitions() {
        // Fold the same per-range tallies in different groupings and
        // orders; every shape must agree — the property that makes
        // re-dispatch and out-of-order completion safe.
        let plan = ShotPlan::new(
            {
                let mut c = Circuit::new(2, 2);
                c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
                c
            },
            StateVector::new(2),
            500,
            9,
        );
        let engine = Engine::sequential();
        let parts: Vec<Counts> = partition_shots(0..500, 7)
            .into_iter()
            .map(|r| engine.run_plan_range(&plan, r))
            .collect();
        // Left fold.
        let mut left = Counts::new();
        for p in &parts {
            merge_counts(&mut left, p.clone());
        }
        // Right-to-left fold.
        let mut right = Counts::new();
        for p in parts.iter().rev() {
            merge_counts(&mut right, p.clone());
        }
        assert_eq!(left, right);
        // Pairwise tree fold: ((p0+p1) + (p2+p3)) + ...
        let mut tree: Vec<Counts> = parts.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut acc = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    merge_counts(&mut acc, b.clone());
                }
                next.push(acc);
            }
            tree = next;
        }
        assert_eq!(tree.pop().unwrap(), left);
        assert_eq!(left, engine.run_plan(&plan), "merged ≠ unpartitioned run");
    }

    #[test]
    fn merge_counts_is_order_independent() {
        let a: Counts = [(0usize, 3usize), (1, 2)].into_iter().collect();
        let b: Counts = [(1usize, 5usize), (7, 1)].into_iter().collect();
        let mut ab = a.clone();
        merge_counts(&mut ab, b.clone());
        let mut ba = b;
        merge_counts(&mut ba, a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(&1), Some(&7));
    }
}
