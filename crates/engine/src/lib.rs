//! # engine — parallel, deterministic shot execution
//!
//! Every sampling workload in this repository — CSWAP classical
//! fidelities (§5.2), GHZ fidelities (§5.3), Table 4's residual-error
//! histograms, the trace-estimation shots behind the application layer —
//! is embarrassingly parallel Monte Carlo: independent shots folded into
//! a tally. This crate is the single entry point for running them at
//! production scale.
//!
//! ## Determinism by seed splitting
//!
//! A job is described by a root seed. Shot `i` runs on its **own** RNG
//! stream, `StdRng::seed_from_u64(derive_stream_seed(root, i))`, where
//! [`derive_stream_seed`] is a SplitMix64-style avalanche of
//! `(root, i)`. Because a shot's stream depends only on the root seed
//! and the shot index — never on which worker ran it or in what order —
//! and because tallies merge commutatively, the result of a job is
//! **bit-identical at any thread count**. Asserted by the crate's
//! determinism tests at 1, 2, and 8 threads.
//!
//! ## Execution model
//!
//! [`Executor`] is the boundary at which callers pick the execution
//! mode: `Executor::Sequential` runs shots inline on the calling
//! thread, `Executor::Pooled` partitions them across an [`Engine`]
//! worker pool — and both produce bit-identical results for the same
//! root seed, because the per-shot streams are mode-independent. Every
//! layer above (protocol backends, analysis drivers, applications)
//! takes `&Executor` instead of forking into sequential/parallel twin
//! APIs; future modes (sharded, async, multi-machine) extend the enum.
//!
//! [`Backend`] is the matching boundary on the representation side:
//! *what* simulates a shot (statevector, density matrix, stabilizer
//! tableau — any `qsim::sim::SimState`) is selected once, per circuit,
//! via `COMPAS_BACKEND` / `--backend` or [`Backend::Auto`]'s
//! Clifford routing — while [`ShotPlan`], [`BatchRunner`], and
//! [`Executor::sample_shots`] stay generic over the backend. One
//! sampling surface, representation and execution mode both chosen at
//! the boundary.
//!
//! [`Engine`] holds an [`EngineConfig`] (thread count, chunk size) and
//! partitions a job's shots into chunks claimed from an atomic cursor by
//! `std::thread` workers (no external dependencies). Each worker owns
//! its accumulator and its *workspace* — e.g. a reused
//! [`qsim::statevector::StateVector`] buffer for statevector shots — and
//! the per-worker tallies merge once at a single join point, the
//! partitioned pattern for embarrassingly parallel sampling.
//!
//! ## Amplitude-level parallelism is a policy, not an API
//!
//! Big statevector shots (2²⁰+ amplitudes) invert the trade-off:
//! shot-level parallelism keeps the cores busy but each shot's latency
//! is one core's memory bandwidth, and the working set no longer fits
//! in cache. For those, the engine flips to **amplitude-level**
//! parallelism: shots run in order and each one splits its amplitude
//! space across the pool via
//! `qsim::amp` (`StateVector::apply_compiled_parallel`), with a barrier
//! per kernel. Deliberately there is **no twin API** — no
//! `sample_shots_amp`, no `Executor::AmpParallel` variant. The mode is
//! pure latency policy, decided per plan by
//! [`EngineConfig::amp_engaged`] from two knobs
//! ([`EngineConfig::amp_threads`] / `COMPAS_AMP_THREADS`, and
//! [`EngineConfig::amp_threshold_qubits`] / `COMPAS_AMP_QUBITS`), and
//! it can stay a policy because the amp-parallel replay is
//! *bit-identical* to the sequential one at any worker count (shot `i`
//! still consumes stream `derive_stream_seed(root, i)`; interpreted
//! points run single-threaded in program order). A twin API would
//! force every protocol backend and analysis driver to pick a mode it
//! cannot evaluate — only the engine sees the width, the backend's
//! range-splitting capability (`SimState::AMP_PARALLEL`), and the
//! machine.
//!
//! The same seed-splitting contract extends past one machine:
//! [`partition_shots`] deterministically splits a job's global shot
//! range into per-worker sub-ranges and [`merge_counts`] folds the
//! results back — executed *anywhere* (the ranged primitives
//! [`Engine::run_plan_range`] / [`Engine::run_fold_range_with`] take
//! global shot indices), the merged tallies are bit-identical to one
//! local run. `crates/shard` builds the multi-machine coordinator on
//! exactly this seam.
//!
//! [`ShotPlan`] describes the statevector workload (circuit, initial
//! state, shot count, root seed); [`BatchRunner`] executes many
//! independent jobs — one per noise point, qubit count, or table row,
//! the common shape of the `bench` binaries — concurrently through one
//! shared worker pool. [`ExperimentBuilder`] layers a declarative grid
//! (points × shots × executor) on top, with a fixed per-point seed
//! derivation.
//!
//! ## Environment knobs
//!
//! * `COMPAS_THREADS` — worker count (also `--threads N` on binaries
//!   that call [`EngineConfig::from_env`]); defaults to the machine's
//!   available parallelism.
//! * `COMPAS_CHUNK` — shots per work unit (default 256).
//! * `COMPAS_AMP_THREADS` — workers splitting one shot's amplitude
//!   space when amp-parallelism engages (`1` disables; defaults to the
//!   machine's available parallelism).
//! * `COMPAS_AMP_QUBITS` — state width (qubits) at which amp-parallel
//!   replay engages (default 20).
//!
//! ```
//! use circuit::circuit::Circuit;
//! use engine::{Engine, ShotPlan};
//! use qsim::statevector::StateVector;
//!
//! let mut c = Circuit::new(2, 2);
//! c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
//! let plan = ShotPlan::new(c, StateVector::new(2), 1000, 7);
//!
//! let counts = Engine::with_threads(4).run_plan(&plan);
//! assert_eq!(counts.values().sum::<usize>(), 1000);
//! // Bell state: only 00 and 11 appear, regardless of thread count.
//! assert_eq!(counts, Engine::with_threads(1).run_plan(&plan));
//! ```

mod backend;
mod batch;
mod config;
mod executor;
mod experiment;
mod pool;
mod seed;
mod sharding;
mod trace;

pub use backend::Backend;
pub use batch::{BatchRunner, ShotJob};
pub use config::EngineConfig;
pub use executor::Executor;
pub use experiment::ExperimentBuilder;
pub use pool::{Counts, Engine, ShotPlan};
pub use seed::{derive_stream_seed, shot_rng};
pub use sharding::{merge_counts, partition_shots};
pub use trace::{MemorySink, ShotRecord, TraceSink};
