//! The execution context every sampling workload runs under.
//!
//! [`Executor`] is the single boundary at which callers choose *how*
//! shots execute — sequentially on the calling thread or partitioned
//! across a worker pool — so the choice never leaks into the signatures
//! of the layers above. A protocol backend, an analysis driver, or an
//! application takes `&Executor` and is oblivious to the mode; adding a
//! future mode (sharded, async, multi-machine) extends this enum instead
//! of forking every API into `foo` / `foo_parallel` twins.
//!
//! ## Determinism contract
//!
//! Both variants derive shot `i`'s RNG stream from the executor's root
//! seed with [`derive_stream_seed`] — [`Executor::Sequential`] simply
//! runs the same per-shot streams in order on one thread. Consequently
//! `Executor::sequential(s)` and `Executor::pooled(engine, s)` produce
//! **bit-identical** results for every workload that follows the fold
//! contract (commutative, per-shot-pure merging); this is asserted by
//! the engine's determinism tests through the full protocol stack.
//!
//! Sub-computations (measurement channels, grid points, Pauli terms)
//! run under [`Executor::derive`]d child contexts, whose root seeds are
//! decorrelated pure functions of `(root, index)` — so a composite
//! experiment is reproducible from one root seed regardless of mode.

use circuit::circuit::Circuit;
use qsim::runner::{pack_cbits, run_program_into, run_program_into_parallel, run_shot_into};
use qsim::sim::SimState;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::hash::Hash;

use crate::batch::{BatchRunner, ShotJob};
use crate::pool::{Counts, Engine};
use crate::seed::{derive_stream_seed, shot_rng};
use crate::trace::TraceSink;

/// An execution context: *where* and *how* a deterministic sampling
/// workload runs.
///
/// Both variants derive shot `i`'s RNG stream from the root seed with
/// [`derive_stream_seed`], so `Executor::sequential(s)` and
/// `Executor::pooled(engine, s)` produce **bit-identical** results for
/// every workload that follows the engine's fold contract (see
/// [`Engine::run_fold_with`]); layers above take `&Executor` instead of
/// forking into sequential/parallel twin APIs, and future modes
/// (sharded, async, multi-machine) extend this enum.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Executor {
    /// Single-threaded execution on the calling thread. Shot `i` still
    /// runs on its own derived stream (not one shared RNG), so this is
    /// the bit-identical reference for [`Executor::Pooled`].
    Sequential {
        /// Root seed; shot `i` runs on `derive_stream_seed(root, i)`.
        root_seed: u64,
    },
    /// Execution over an [`Engine`] worker pool — the production mode.
    Pooled {
        /// The configured worker pool.
        engine: Engine,
        /// Root seed; shot `i` runs on `derive_stream_seed(root, i)`.
        root_seed: u64,
    },
}

impl Executor {
    /// A sequential context rooted at `root_seed`.
    pub fn sequential(root_seed: u64) -> Self {
        Executor::Sequential { root_seed }
    }

    /// A pooled context over `engine`, rooted at `root_seed`.
    pub fn pooled(engine: Engine, root_seed: u64) -> Self {
        Executor::Pooled { engine, root_seed }
    }

    /// A pooled context configured from the environment
    /// (`COMPAS_THREADS` / `--threads N` / `COMPAS_CHUNK`, see
    /// [`crate::EngineConfig::from_env`]), rooted at `root_seed`.
    pub fn from_env(root_seed: u64) -> Self {
        Executor::pooled(Engine::from_env(), root_seed)
    }

    /// The root seed of this context.
    pub fn root_seed(&self) -> u64 {
        match self {
            Executor::Sequential { root_seed } | Executor::Pooled { root_seed, .. } => *root_seed,
        }
    }

    /// Worker count this context executes with (1 when sequential).
    pub fn threads(&self) -> usize {
        match self {
            Executor::Sequential { .. } => 1,
            Executor::Pooled { engine, .. } => engine.threads(),
        }
    }

    /// The same mode rooted at a different seed.
    pub fn with_seed(&self, root_seed: u64) -> Self {
        match self {
            Executor::Sequential { .. } => Executor::Sequential { root_seed },
            Executor::Pooled { engine, .. } => Executor::Pooled {
                engine: engine.clone(),
                root_seed,
            },
        }
    }

    /// The child context of sub-computation `index`: same mode, root
    /// seed `derive_stream_seed(self.root_seed(), index)`. Child seeds
    /// are pure functions of `(root, index)`, so composite experiments
    /// stay deterministic in every mode.
    pub fn derive(&self, index: u64) -> Self {
        self.with_seed(derive_stream_seed(self.root_seed(), index))
    }

    /// The engine this context folds through. `Sequential` uses a
    /// single-threaded engine, whose inline path runs the identical
    /// per-shot streams — that equivalence *is* the determinism
    /// guarantee.
    pub(crate) fn engine(&self) -> Engine {
        match self {
            Executor::Sequential { .. } => Engine::sequential(),
            Executor::Pooled { engine, .. } => engine.clone(),
        }
    }

    /// Folds `shots` independent shots into an accumulator under this
    /// context. See [`Engine::run_fold_with`] for the fold/determinism
    /// contract; the root seed comes from the executor.
    pub fn run_fold_with<W, A, MW, IA, F, M>(
        &self,
        shots: u64,
        make_ws: MW,
        init: IA,
        step: F,
        merge: M,
    ) -> A
    where
        W: Send,
        A: Send,
        MW: Fn() -> W + Sync,
        IA: Fn() -> A + Sync,
        F: Fn(&mut A, &mut W, u64, &mut StdRng) + Sync,
        M: Fn(A, A) -> A,
    {
        self.engine()
            .run_fold_with(shots, self.root_seed(), make_ws, init, step, merge)
    }

    /// Counts the shots for which `pred` holds, with a per-worker
    /// workspace.
    pub fn run_count_with<W, MW, F>(&self, shots: u64, make_ws: MW, pred: F) -> u64
    where
        W: Send,
        MW: Fn() -> W + Sync,
        F: Fn(&mut W, u64, &mut StdRng) -> bool + Sync,
    {
        self.engine()
            .run_count_with(shots, self.root_seed(), make_ws, pred)
    }

    /// Workspace-free variant of [`Executor::run_count_with`].
    pub fn run_count<F>(&self, shots: u64, pred: F) -> u64
    where
        F: Fn(u64, &mut StdRng) -> bool + Sync,
    {
        self.engine().run_count(shots, self.root_seed(), pred)
    }

    /// Histograms one key per shot, with a per-worker workspace.
    pub fn run_tally_with<K, W, MW, F>(&self, shots: u64, make_ws: MW, key_of: F) -> HashMap<K, u64>
    where
        K: Eq + Hash + Send,
        W: Send,
        MW: Fn() -> W + Sync,
        F: Fn(&mut W, u64, &mut StdRng) -> K + Sync,
    {
        self.engine()
            .run_tally_with(shots, self.root_seed(), make_ws, key_of)
    }

    /// Workspace-free variant of [`Executor::run_tally_with`].
    pub fn run_tally<K, F>(&self, shots: u64, key_of: F) -> HashMap<K, u64>
    where
        K: Eq + Hash + Send,
        F: Fn(u64, &mut StdRng) -> K + Sync,
    {
        self.engine().run_tally(shots, self.root_seed(), key_of)
    }

    /// Runs a batch of independent [`ShotJob`]s through this context's
    /// pool (one shared work list, per-job histograms). Each job carries
    /// its own root seed — derive them from this executor (e.g. via
    /// [`Executor::derive`] or [`derive_stream_seed`]) to keep the batch
    /// reproducible.
    pub fn run_batch<J: ShotJob>(&self, jobs: &[J]) -> Vec<HashMap<J::Key, u64>> {
        BatchRunner::new(&self.engine()).run_batch(jobs)
    }

    /// Executor-backed equivalent of [`qsim::runner::sample_shots`]:
    /// plays `circuit` from `initial` for `shots` repetitions under this
    /// context and histograms the packed classical register (same key
    /// and value conventions). Unlike `sample_shots`, each shot runs on
    /// its derived stream, so the counts are identical in every mode —
    /// and bit-identical to [`Engine::run_plan`] on the equivalent
    /// [`ShotPlan`](crate::ShotPlan).
    ///
    /// The circuit is **compiled once** ([`SimState::compile`] — fused
    /// statevector kernels where the backend has a compiler) and the
    /// program replayed across all shots and workers; see
    /// [`Executor::sample_shots_interpreted`] for the re-interpreting
    /// reference path, which tallies identically per root seed.
    ///
    /// Generic over the simulation backend (any [`SimState`]); pass
    /// `&StateVector::new(n)`, `&CliffordState::new(n)`, or a prepared
    /// [`DensityMatrix`](qsim::density::DensityMatrix) — or let
    /// [`Backend`](crate::Backend) choose at runtime.
    ///
    /// On big statevector states (at or above
    /// [`EngineConfig::amp_threshold_qubits`](crate::EngineConfig::amp_threshold_qubits),
    /// with more than one
    /// [`amp_threads`](crate::EngineConfig::amp_threads) worker
    /// configured) a pooled context flips from shot-level to
    /// **amplitude-level** parallelism: shots run in order, each
    /// splitting its amplitude space across the pool. Pure latency
    /// policy — shot `i` still runs on `derive_stream_seed(root, i)`
    /// and each amp-parallel shot is bit-identical to its sequential
    /// replay, so the counts never depend on which mode engaged.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than `initial` has.
    pub fn sample_shots<S: SimState>(
        &self,
        circuit: &Circuit,
        initial: &S,
        shots: usize,
    ) -> Counts {
        self.check_plan::<S>(circuit, initial);
        let program = S::compile(circuit);
        let engine = self.engine();
        if engine.amp_engaged::<S>(initial.num_qubits()) {
            let amp_threads = engine.config().amp_threads;
            let mut counts = Counts::new();
            let mut state = initial.clone();
            let mut cbits = Vec::new();
            for shot in 0..shots as u64 {
                let mut rng = shot_rng(self.root_seed(), shot);
                run_program_into_parallel(
                    &program,
                    initial,
                    &mut state,
                    &mut cbits,
                    &mut rng,
                    amp_threads,
                );
                *counts.entry(pack_cbits(&cbits)).or_insert(0) += 1;
            }
            return counts;
        }
        let tally = self.run_tally_with(
            shots as u64,
            || (initial.clone(), Vec::new()),
            |(state, cbits), _shot, rng| {
                run_program_into(&program, initial, state, cbits, rng);
                pack_cbits(cbits)
            },
        );
        tally.into_iter().map(|(k, v)| (k, v as usize)).collect()
    }

    /// Traced twin of [`Executor::sample_shots`]: identical counts,
    /// plus one [`ShotRecord`](crate::ShotRecord) per executed shot
    /// delivered to `sink` (packed record, RNG stream id, wall-clock
    /// nanoseconds). Tracing observes the run without perturbing it,
    /// so sequential and pooled contexts still tally bit-identically —
    /// and deliver the same record set, in unspecified order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than `initial` has.
    pub fn sample_shots_traced<S: SimState>(
        &self,
        circuit: &Circuit,
        initial: &S,
        shots: usize,
        sink: &dyn TraceSink,
    ) -> Counts {
        self.check_plan::<S>(circuit, initial);
        let program = S::compile(circuit);
        self.engine().run_record_range_traced(
            0..shots as u64,
            self.root_seed(),
            || (initial.clone(), Vec::new()),
            |(state, cbits), _shot, rng| {
                run_program_into(&program, initial, state, cbits, rng);
                pack_cbits(cbits) as u64
            },
            sink,
        )
    }

    /// Interpreted reference for [`Executor::sample_shots`]: every shot
    /// re-steps the raw instruction stream instead of replaying a
    /// compiled program. Record-identical to the compiled path per root
    /// seed — that equivalence is asserted by the engine's
    /// `compiled_equivalence` property tests and timed by the
    /// `backend_scaling` perf guard. Use the compiled path for
    /// production sampling.
    pub fn sample_shots_interpreted<S: SimState>(
        &self,
        circuit: &Circuit,
        initial: &S,
        shots: usize,
    ) -> Counts {
        self.check_plan::<S>(circuit, initial);
        let tally = self.run_tally_with(
            shots as u64,
            || (initial.clone(), Vec::new()),
            |(state, cbits), _shot, rng| {
                run_shot_into(circuit, initial, state, cbits, rng);
                pack_cbits(cbits)
            },
        );
        tally.into_iter().map(|(k, v)| (k, v as usize)).collect()
    }

    fn check_plan<S: SimState>(&self, circuit: &Circuit, initial: &S) {
        assert!(
            circuit.num_qubits() <= initial.num_qubits(),
            "circuit needs {} qubits but the state has {}",
            circuit.num_qubits(),
            initial.num_qubits()
        );
        debug_assert!(
            S::supports(circuit).is_ok(),
            "{}",
            S::supports(circuit).unwrap_err()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ShotPlan;
    use qsim::statevector::StateVector;
    use rand::Rng;

    #[test]
    fn sequential_and_pooled_tallies_are_bit_identical() {
        let key = |_: u64, rng: &mut StdRng| rng.random_range(0..16u32);
        let seq = Executor::sequential(77).run_tally(8_000, key);
        let pooled = Executor::pooled(Engine::with_threads(4), 77).run_tally(8_000, key);
        assert_eq!(seq, pooled);
        assert_eq!(seq.values().sum::<u64>(), 8_000);
    }

    #[test]
    fn derive_is_pure_and_mode_preserving() {
        let seq = Executor::sequential(5);
        assert_eq!(seq.derive(3).root_seed(), seq.derive(3).root_seed());
        assert_ne!(seq.derive(0).root_seed(), seq.derive(1).root_seed());
        assert_eq!(seq.derive(9).threads(), 1);
        let pooled = Executor::pooled(Engine::with_threads(3), 5);
        assert_eq!(pooled.derive(9).threads(), 3);
        // Child seeds depend only on (root, index), not on the mode.
        assert_eq!(seq.derive(4).root_seed(), pooled.derive(4).root_seed());
    }

    #[test]
    fn sample_shots_matches_run_plan_and_is_mode_invariant() {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let initial = StateVector::new(2);
        let seq = Executor::sequential(13).sample_shots(&c, &initial, 1_000);
        let pooled =
            Executor::pooled(Engine::with_threads(4), 13).sample_shots(&c, &initial, 1_000);
        assert_eq!(seq, pooled);
        let plan = ShotPlan::new(c, initial, 1_000, 13);
        assert_eq!(seq, Engine::sequential().run_plan(&plan));
        assert_eq!(seq.values().sum::<usize>(), 1_000);
    }

    #[test]
    fn run_count_agrees_across_modes() {
        let pred = |_: u64, rng: &mut StdRng| rng.random::<f64>() < 0.25;
        let seq = Executor::sequential(21).run_count(10_000, pred);
        let pooled = Executor::pooled(Engine::with_threads(8), 21).run_count(10_000, pred);
        assert_eq!(seq, pooled);
        let frac = seq as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }
}
