//! The engine's central guarantee: for a fixed root seed, results are
//! bit-identical at any thread count and any chunking, because shot `i`
//! always runs on stream `derive_stream_seed(root, i)` no matter which
//! worker executes it.

use circuit::circuit::{Circuit, Instruction};
use engine::{shot_rng, BatchRunner, Engine, EngineConfig, ShotPlan};
use qsim::runner::run_shot;
use qsim::statevector::StateVector;
use std::collections::HashMap;

/// A dynamic circuit exercising measurement, feed-forward, reset, and
/// stochastic noise — everything that consumes randomness.
fn noisy_teleportation() -> Circuit {
    let mut c = Circuit::new(3, 3);
    c.ry(0, 0.9);
    c.h(1).cx(1, 2);
    c.push(Instruction::Depolarizing {
        qubits: vec![2],
        p: 0.1,
    });
    c.cx(0, 1).h(0);
    c.measure(0, 0).measure(1, 1);
    c.cond_x(2, &[1]).cond_z(2, &[0]);
    c.reset(0);
    c.measure(2, 2);
    c
}

#[test]
fn same_root_seed_identical_counts_at_1_2_and_8_threads() {
    let plan = ShotPlan::new(noisy_teleportation(), StateVector::new(3), 20_000, 0xDEAD);
    let counts_1 = Engine::with_threads(1).run_plan(&plan);
    let counts_2 = Engine::with_threads(2).run_plan(&plan);
    let counts_8 = Engine::with_threads(8).run_plan(&plan);
    assert_eq!(counts_1, counts_2, "2 threads diverged from 1");
    assert_eq!(counts_1, counts_8, "8 threads diverged from 1");
    assert_eq!(counts_1.values().sum::<usize>(), 20_000);
}

#[test]
fn chunk_size_never_changes_results() {
    let plan = ShotPlan::new(noisy_teleportation(), StateVector::new(3), 5_000, 7);
    let runs: Vec<_> = [1u64, 13, 256, 10_000]
        .into_iter()
        .map(|chunk_size| {
            Engine::new(EngineConfig {
                threads: 4,
                chunk_size,
                ..EngineConfig::default()
            })
            .run_plan(&plan)
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(&runs[0], other);
    }
}

#[test]
fn engine_matches_naive_per_shot_seeded_loop_exactly() {
    // The ground truth the engine must reproduce bit-for-bit: a plain
    // sequential loop calling qsim's run_shot with the per-shot stream.
    let circuit = noisy_teleportation();
    let initial = StateVector::new(3);
    let (shots, root) = (4_000u64, 42u64);

    let mut expected: HashMap<usize, usize> = HashMap::new();
    for shot in 0..shots {
        let mut rng = shot_rng(root, shot);
        let out = run_shot(&circuit, &initial, &mut rng);
        *expected.entry(out.cbits_as_usize()).or_insert(0) += 1;
    }

    let plan = ShotPlan::new(circuit, initial, shots, root);
    assert_eq!(Engine::with_threads(8).run_plan(&plan), expected);
    let batched = BatchRunner::new(&Engine::with_threads(3)).run_plans(std::slice::from_ref(&plan));
    assert_eq!(batched[0], expected);
}

#[test]
fn batch_runner_is_thread_invariant_per_job() {
    let plans: Vec<ShotPlan> = (0..4)
        .map(|i| {
            ShotPlan::new(
                noisy_teleportation(),
                StateVector::new(3),
                2_000 + 500 * i,
                100 + i,
            )
        })
        .collect();
    let run = |threads| {
        let engine = Engine::with_threads(threads);
        BatchRunner::new(&engine).run_plans(&plans)
    };
    let r1 = run(1);
    assert_eq!(r1, run(2));
    assert_eq!(r1, run(8));
    for (plan, counts) in plans.iter().zip(&r1) {
        assert_eq!(counts.values().sum::<usize>() as u64, plan.shots());
    }
}

#[test]
fn sequential_and_pooled_executors_are_bit_identical_for_all_protocol_backends() {
    // The Executor's central guarantee, asserted through the unified
    // `TraceBackend::estimate_trace` for every shot-based protocol
    // backend: `Executor::sequential(s)` and `Executor::pooled(_, s)`
    // produce bit-identical `TraceEstimate`s, at several thread counts
    // and chunk sizes.
    use compas::cswap::CswapScheme;
    use compas::estimator::TraceBackend;
    use compas::swap_test::{
        CompasProtocol, HadamardTestSwapTest, MonolithicSwapTest, MonolithicVariant,
    };
    use engine::Executor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(17);
    let states: Vec<mathkit::matrix::Matrix> = (0..3)
        .map(|_| qsim::qrand::random_density_matrix(1, &mut rng))
        .collect();
    let monolithic = MonolithicSwapTest::new(3, 1, MonolithicVariant::Fanout);
    let hadamard = HadamardTestSwapTest::new(3, 1);
    let compas = CompasProtocol::new(3, 1, CswapScheme::Teledata);
    let backends: [(&str, &dyn TraceBackend); 3] = [
        ("monolithic", &monolithic),
        ("hadamard-test", &hadamard),
        ("compas", &compas),
    ];

    for (name, backend) in backends {
        let root = 0xC0FFEE;
        let reference = backend.estimate_trace(&states, 400, &Executor::sequential(root));
        for threads in [1usize, 2, 8] {
            for chunk_size in [7u64, 256] {
                let engine = Engine::new(EngineConfig {
                    threads,
                    chunk_size,
                    ..EngineConfig::default()
                });
                let pooled = backend.estimate_trace(&states, 400, &Executor::pooled(engine, root));
                assert_eq!(
                    reference, pooled,
                    "{name}: pooled({threads} threads, chunk {chunk_size}) diverged"
                );
            }
        }
        // A different root seed must actually change the samples — the
        // equality above is not vacuous.
        let other = backend.estimate_trace(&states, 400, &Executor::sequential(root + 1));
        assert_ne!(reference, other, "{name}: seed had no effect");
    }
}

#[test]
fn different_root_seeds_give_different_samples() {
    let circuit = noisy_teleportation();
    let a = Engine::with_threads(4).run_plan(&ShotPlan::new(
        circuit.clone(),
        StateVector::new(3),
        5_000,
        1,
    ));
    let b =
        Engine::with_threads(4).run_plan(&ShotPlan::new(circuit, StateVector::new(3), 5_000, 2));
    assert_ne!(a, b, "independent seeds should not collide exactly");
}

#[test]
fn every_backend_is_mode_and_thread_invariant() {
    // The determinism guarantee holds per simulation backend: for one
    // root seed, Backend::sample_shots tallies identically under the
    // sequential executor and pooled executors at several thread
    // counts and chunk sizes.
    use engine::{Backend, Executor};

    // Clifford with feed-forward and noise, so every backend (incl.
    // density record sampling) accepts it.
    let mut c = Circuit::new(3, 3);
    c.x(0);
    c.h(1).cx(1, 2);
    c.push(Instruction::Depolarizing {
        qubits: vec![2],
        p: 0.1,
    });
    c.cx(0, 1).h(0);
    c.measure(0, 0).measure(1, 1);
    c.cond_x(2, &[1]).cond_z(2, &[0]);
    c.measure(2, 2);

    for backend in [
        Backend::Auto,
        Backend::StateVector,
        Backend::Stabilizer,
        Backend::Density,
    ] {
        let root = 0xFACE;
        let reference = backend
            .sample_shots(&c, 6_000, &Executor::sequential(root))
            .unwrap();
        assert_eq!(reference.values().sum::<usize>(), 6_000);
        for threads in [2usize, 8] {
            for chunk_size in [13u64, 256] {
                let engine = Engine::new(EngineConfig {
                    threads,
                    chunk_size,
                    ..EngineConfig::default()
                });
                let pooled = backend
                    .sample_shots(&c, 6_000, &Executor::pooled(engine, root))
                    .unwrap();
                assert_eq!(
                    reference, pooled,
                    "{backend}: pooled({threads} threads, chunk {chunk_size}) diverged"
                );
            }
        }
        let other = backend
            .sample_shots(&c, 6_000, &Executor::sequential(root + 1))
            .unwrap();
        assert_ne!(reference, other, "{backend}: seed had no effect");
    }
}

#[test]
fn amp_parallel_tallies_are_worker_count_invariant() {
    // CI's guards job filters on `amp_parallel`: with the engagement
    // threshold forced to zero, amplitude-level parallelism at 2 and 8
    // workers must tally bit-identically to the never-engaged reference
    // (amp_threads = 1) — the amp path is a latency policy, not a new
    // sampling semantics.
    use engine::Executor;

    let circuit = noisy_teleportation();
    let root = 0xA117;
    let run = |amp_threads: usize| {
        let engine = Engine::new(
            EngineConfig::with_threads(1)
                .with_amp_threads(amp_threads)
                .with_amp_threshold(0),
        );
        Executor::pooled(engine, root).sample_shots(&circuit, &StateVector::new(3), 4_000)
    };
    let reference = run(1);
    assert_eq!(reference.values().sum::<usize>(), 4_000);
    assert_eq!(reference, run(2), "2 amp workers diverged");
    assert_eq!(reference, run(8), "8 amp workers diverged");
    // And the amp path agrees with plan-level execution too.
    let plan = ShotPlan::new(noisy_teleportation(), StateVector::new(3), 4_000, root);
    let amp_plan = Engine::new(
        EngineConfig::with_threads(1)
            .with_amp_threads(4)
            .with_amp_threshold(0),
    )
    .run_plan(&plan);
    assert_eq!(reference, amp_plan, "run_plan amp path diverged");
}

#[test]
fn env_selected_backend_is_mode_invariant() {
    // The CI matrix runs this test under COMPAS_BACKEND=statevector and
    // COMPAS_BACKEND=stabilizer: whichever backend the environment
    // picks, sequential and pooled execution must tally identically.
    use engine::{Backend, Executor};

    let backend = Backend::from_env();
    let mut c = Circuit::new(4, 4);
    c.h(0);
    for q in 1..4 {
        c.cx(q - 1, q);
    }
    c.push(Instruction::Depolarizing {
        qubits: vec![1, 2],
        p: 0.05,
    });
    for q in 0..4 {
        c.measure(q, q);
    }
    assert_eq!(backend.resolve(&c), backend.resolve(&c), "routing is pure");
    let seq = backend
        .sample_shots(&c, 5_000, &Executor::sequential(31))
        .unwrap();
    let pooled = backend
        .sample_shots(&c, 5_000, &Executor::pooled(Engine::with_threads(4), 31))
        .unwrap();
    assert_eq!(seq, pooled, "backend {backend} diverged across executors");
    assert_eq!(seq.values().sum::<usize>(), 5_000);
}
