//! `ExperimentBuilder`'s seed contract, exercised through real protocol
//! backends: one builder call over a `backends × noise points` grid must
//! match per-point manual invocations under the points' derived
//! contexts, exactly, in both execution modes.

use compas::cswap::CswapScheme;
use compas::estimator::{TraceBackend, TraceEstimate};
use compas::swap_test::{CompasProtocol, MonolithicSwapTest, MonolithicVariant};
use engine::{Engine, Executor, ExperimentBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_states() -> Vec<mathkit::matrix::Matrix> {
    let mut rng = StdRng::seed_from_u64(8);
    (0..2)
        .map(|_| qsim::qrand::random_density_matrix(1, &mut rng))
        .collect()
}

/// Builds backend `which` (0 = monolithic Fanout, 1 = COMPAS teledata)
/// at Bell-link noise `bell_error` — the per-point "noise point".
fn backend_at(which: usize, bell_error: f64) -> Box<dyn TraceBackend> {
    match which {
        0 => Box::new(MonolithicSwapTest::new(2, 1, MonolithicVariant::Fanout)),
        _ => Box::new(CompasProtocol::with_bell_error(
            2,
            1,
            CswapScheme::Teledata,
            bell_error,
        )),
    }
}

#[test]
fn builder_grid_matches_per_point_manual_invocations_exactly() {
    let states = test_states();
    let noise_points = [0.0, 0.05, 0.1];
    let backends = [0usize, 1];
    let shots = 300usize;

    let builder = ExperimentBuilder::grid(&backends, &noise_points).shots(shots);
    assert_eq!(builder.len(), 6, "2 backends × 3 noise points");

    for exec in [
        Executor::sequential(0xE1),
        Executor::pooled(Engine::with_threads(4), 0xE1),
    ] {
        // One declarative builder call over the whole grid…
        let results: Vec<TraceEstimate> = builder.run(&exec, |&(which, p), shots, child| {
            backend_at(which, p).estimate_trace(&states, shots, child)
        });

        // …must equal each point invoked by hand under its derived
        // context, bit for bit.
        let mut idx = 0u64;
        for &which in &backends {
            for &p in &noise_points {
                let manual = backend_at(which, p).estimate_trace(&states, shots, &exec.derive(idx));
                assert_eq!(
                    results[idx as usize], manual,
                    "grid point {idx} (backend {which}, noise {p}) diverged"
                );
                idx += 1;
            }
        }
    }
}

#[test]
fn builder_runs_are_mode_invariant() {
    let states = test_states();
    let builder = ExperimentBuilder::grid(&[0usize, 1], &[0.0, 0.05, 0.1]).shots(200);
    let eval = |&(which, p): &(usize, f64), shots: usize, child: &Executor| {
        backend_at(which, p).estimate_trace(&states, shots, child)
    };
    let seq = builder.run(&Executor::sequential(3), eval);
    let pooled = builder.run(&Executor::pooled(Engine::with_threads(8), 3), eval);
    assert_eq!(seq, pooled);
}
