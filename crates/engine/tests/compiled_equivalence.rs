//! Property tests: the compiled shot-replay path tallies **bit-identical**
//! measurement records to the interpreted reference, for one root seed,
//! across random Clifford+T circuits with mid-circuit measurement,
//! feedback, reset, and depolarizing noise — in both execution modes
//! (`Sequential` and `Pooled`) and on every backend the
//! `COMPAS_BACKEND` matrix selects (the statevector compiles to fused
//! kernels; density and stabilizer replay the instruction stream, so
//! their equivalence pins the plumbing rather than a compiler).

use circuit::circuit::Circuit;
use engine::{Backend, Engine, EngineConfig, Executor};
use mathkit::complex::{c64, Complex};
use proptest::prelude::*;
use qsim::compile::{compile, CompiledOp};
use qsim::sim::SimState;
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stabilizer::clifford::CliffordState;

/// Builds a random dynamic circuit from a seed: `depth` gates drawn
/// from the Clifford(+T) set, interleaved with measurements, Pauli
/// feedback, resets, and depolarizing sites.
fn random_circuit(seed: u64, n: usize, depth: usize, with_t: bool) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n, n);
    let mut written: Vec<usize> = Vec::new();
    for _ in 0..depth {
        let q = rng.random_range(0..n);
        let r = (q + 1 + rng.random_range(0..n - 1)) % n;
        match rng.random_range(0..if with_t { 14 } else { 12 }) {
            0 => {
                c.h(q);
            }
            1 => {
                c.x(q);
            }
            2 => {
                c.z(q);
            }
            3 => {
                c.s(q);
            }
            4 => {
                c.sdg(q);
            }
            5 => {
                c.cx(q, r);
            }
            6 => {
                c.cz(q, r);
            }
            7 => {
                c.swap(q, r);
            }
            8 => {
                // Mid-circuit measurement into the qubit's own cbit.
                c.measure(q, q);
                written.push(q);
            }
            9 => {
                if let Some(&cb) = written.last() {
                    if rng.random() {
                        c.cond_x(q, &[cb]);
                    } else {
                        c.cond_z(q, &[cb]);
                    }
                } else {
                    c.y(q);
                }
            }
            10 => {
                c.reset(q);
            }
            11 => {
                c.push(circuit::circuit::Instruction::Depolarizing {
                    qubits: vec![q],
                    p: 0.2,
                });
            }
            12 => {
                c.t(q);
            }
            _ => {
                c.tdg(q);
            }
        }
    }
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

/// Asserts compiled ≡ interpreted tallies on backend `S` for one root
/// seed, across execution modes: sequential, shot-pooled, and (with
/// the width threshold forced to zero) amplitude-parallel. Backends
/// that cannot range-split silently never engage the amp mode, which
/// is itself part of the contract — the policy must be invisible in
/// the tallies.
fn assert_equivalence<S: SimState>(circuit: &Circuit, root_seed: u64, shots: usize) {
    let initial = S::prepare(circuit.num_qubits());
    let amp_engine = Engine::new(
        EngineConfig::with_threads(1)
            .with_amp_threads(3)
            .with_amp_threshold(0),
    );
    for exec in [
        Executor::sequential(root_seed),
        Executor::pooled(Engine::with_threads(3), root_seed),
        Executor::pooled(amp_engine, root_seed),
    ] {
        let compiled = exec.sample_shots(circuit, &initial, shots);
        let interpreted = exec.sample_shots_interpreted(circuit, &initial, shots);
        assert_eq!(
            compiled,
            interpreted,
            "{}: compiled and interpreted tallies diverged ({} threads)",
            S::NAME,
            exec.threads()
        );
        assert_eq!(compiled.values().sum::<usize>(), shots, "{}", S::NAME);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clifford+T circuits on the backend `COMPAS_BACKEND` selects
    /// (`Auto` routes per circuit); circuits a selected backend cannot
    /// execute fall back to the statevector, so the fused-kernel
    /// compiler is exercised in every matrix leg.
    #[test]
    fn compiled_equals_interpreted_per_env_backend(
        seed in 0u64..1_000_000,
        n in 2usize..5,
        depth in 4usize..24,
        with_t in proptest::prelude::any::<bool>(),
    ) {
        let circuit = random_circuit(seed, n, depth, with_t);
        let shots = 120;
        match Backend::from_env().resolve(&circuit) {
            b if b.supports(&circuit).is_err() => {
                // e.g. COMPAS_BACKEND=stabilizer with a T gate: the
                // probe rejects up front; compile the statevector path
                // instead so every case still tests the compiler.
                assert_equivalence::<StateVector>(&circuit, seed ^ 0xC0A5, shots);
            }
            Backend::Stabilizer => {
                assert_equivalence::<CliffordState>(&circuit, seed ^ 0xC0A5, shots);
                // The tableau replays instructions; the compiler claim
                // is the statevector's, so cross-check it too.
                assert_equivalence::<StateVector>(&circuit, seed ^ 0xC0A5, shots);
            }
            _ => assert_equivalence::<StateVector>(&circuit, seed ^ 0xC0A5, shots),
        }
    }
}

/// Random unnormalised amplitude buffer — `apply_range` is linear, so
/// bit-identity over range covers needs no physical state.
fn random_amps(len: usize, rng: &mut StdRng) -> Vec<Complex> {
    (0..len)
        .map(|_| c64(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The range-seam contract itself: for every kernel of a random
    /// compiled program, applying it over an **arbitrary disjoint
    /// cover** of `[0, 2ⁿ⁺ʷ)` — uneven random cuts into 1/2/4/7 parts,
    /// applied in shuffled order — is bit-identical to the single full
    /// pass, as is the balanced [`CompiledOp::worker_range`] cover the
    /// amp-parallel driver uses.
    #[test]
    fn kernels_over_arbitrary_range_covers_match_full_pass(
        seed in 0u64..1_000_000,
        n in 2usize..5,
        depth in 4usize..24,
        widen in 0usize..3,
        parts_idx in 0usize..4,
    ) {
        let parts = [1usize, 2, 4, 7][parts_idx];
        let program = compile(&random_circuit(seed, n, depth, true));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let len = 1usize << (n + widen);
        let base = random_amps(len, &mut rng);
        for op in program.ops() {
            if matches!(op, CompiledOp::Interp(_)) {
                continue;
            }
            let mut full = base.clone();
            op.apply_range(&mut full, 0, len, widen);

            // Random uneven cut points, segments applied out of order:
            // disjoint ranges own disjoint work units, so order is
            // immaterial.
            let mut cuts: Vec<usize> = (0..parts - 1).map(|_| rng.random_range(0..=len)).collect();
            cuts.push(0);
            cuts.push(len);
            cuts.sort_unstable();
            let mut segments: Vec<(usize, usize)> =
                cuts.windows(2).map(|w| (w[0], w[1])).collect();
            for i in (1..segments.len()).rev() {
                let j = rng.random_range(0..=i);
                segments.swap(i, j);
            }
            let mut covered = base.clone();
            for (lo, hi) in segments {
                op.apply_range(&mut covered, lo, hi, widen);
            }
            prop_assert_eq!(&covered, &full, "uneven cover diverged: {:?}", op);

            let mut balanced = base.clone();
            for worker in 0..parts {
                let range = op.worker_range(worker, parts, len, widen);
                op.apply_range(&mut balanced, range.start, range.end, widen);
            }
            prop_assert_eq!(&balanced, &full, "worker_range cover diverged: {:?}", op);
        }
    }
}

#[test]
fn compiled_plan_batch_and_executor_paths_agree() {
    // One circuit, three compiled surfaces: Engine::run_plan,
    // BatchRunner::run_plans, Executor::sample_shots — all replaying
    // the same compiled program — plus the interpreted reference.
    let circuit = random_circuit(7, 4, 16, true);
    let initial = StateVector::new(4);
    let exec = Executor::pooled(Engine::with_threads(2), 99);
    let reference = exec.sample_shots_interpreted(&circuit, &initial, 500);

    let compiled = exec.sample_shots(&circuit, &initial, 500);
    assert_eq!(compiled, reference);

    let plan = engine::ShotPlan::new(circuit.clone(), initial.clone(), 500, 99);
    assert_eq!(Engine::with_threads(2).run_plan(&plan), reference);

    let batched = engine::BatchRunner::new(&Engine::with_threads(2)).run_plans(&[plan]);
    assert_eq!(batched[0], reference);
}

#[test]
fn density_backend_program_plumbing_is_identity() {
    // The density backend's program is the circuit itself; its compiled
    // path must equal its interpreted path exactly.
    let mut c = Circuit::new(3, 3);
    c.h(0).cx(0, 1).cz(1, 2);
    c.push(circuit::circuit::Instruction::Depolarizing {
        qubits: vec![1],
        p: 0.1,
    });
    for q in 0..3 {
        c.measure(q, q);
    }
    let initial = qsim::density::DensityMatrix::new(3);
    let exec = Executor::sequential(5);
    assert_eq!(
        exec.sample_shots(&c, &initial, 200),
        exec.sample_shots_interpreted(&c, &initial, 200)
    );
}
