//! Reactor behavior over real loopback sockets: framing, ordered
//! completions, backpressure, oversized lines, idle timeouts, and the
//! many-idle-connections economics the crate exists for.

use reactor::{Completion, Line, Reactor, ReactorConfig, ReactorHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spawns an upper-casing echo reactor: each line comes back
/// upper-cased with a newline. `shutdown!` closes after replying.
fn spawn_echo(config: ReactorConfig) -> ReactorHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    Reactor::spawn(listener, config, |_ctl| {
        Arc::new(
            |_conn: u64, line: Line, completion: Completion| match line {
                Line::Complete(bytes) => {
                    let mut reply = bytes.to_ascii_uppercase();
                    reply.push(b'\n');
                    if bytes == b"shutdown!" {
                        completion.send_close(reply);
                    } else {
                        completion.send(reply);
                    }
                }
                Line::Oversized => completion.send_close(b"too long\n".to_vec()),
            },
        )
    })
    .unwrap()
}

fn connect(handle: &ReactorHandle) -> TcpStream {
    TcpStream::connect(handle.addr()).unwrap()
}

#[test]
fn echoes_lines_and_ignores_blanks() {
    let handle = spawn_echo(ReactorConfig::default());
    let mut stream = connect(&handle);
    stream.write_all(b"hello\n\n   \nworld\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "HELLO\n");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "WORLD\n", "blank lines must not consume reply slots");
    drop(stream);
    handle.stop();
}

#[test]
fn replies_are_delivered_in_request_order_despite_completion_order() {
    // The handler defers every line to a thread that completes them in
    // *reverse* arrival order; the wire must still answer in request
    // order (per-connection sequencing).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (tx, rx) = mpsc::channel::<(Vec<u8>, Completion)>();
    let tx = std::sync::Mutex::new(tx);
    let handle = Reactor::spawn(listener, ReactorConfig::default(), move |_ctl| {
        Arc::new(move |_conn: u64, line: Line, completion: Completion| {
            if let Line::Complete(bytes) = line {
                tx.lock().unwrap().send((bytes, completion)).unwrap();
            }
        })
    })
    .unwrap();
    let resolver = std::thread::spawn(move || {
        let mut batch = Vec::new();
        while batch.len() < 3 {
            batch.push(rx.recv().unwrap());
        }
        for (bytes, completion) in batch.into_iter().rev() {
            let mut reply = bytes;
            reply.push(b'\n');
            completion.send(reply);
        }
    });
    let mut stream = connect(&handle);
    stream.write_all(b"first\nsecond\nthird\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut got = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        got.push(line.trim().to_string());
    }
    assert_eq!(
        got,
        vec!["first", "second", "third"],
        "replies must be re-ordered to request order"
    );
    resolver.join().unwrap();
    drop(stream);
    handle.stop();
}

#[test]
fn send_close_flushes_the_goodbye_then_closes() {
    let handle = spawn_echo(ReactorConfig::default());
    let mut stream = connect(&handle);
    stream.write_all(b"shutdown!\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "SHUTDOWN!\n");
    // After the goodbye the server closes: the next read sees EOF.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    handle.stop();
}

#[test]
fn oversized_lines_get_one_reply_then_the_connection_closes() {
    let handle = spawn_echo(ReactorConfig {
        max_line_bytes: 1024,
        ..ReactorConfig::default()
    });
    let mut stream = connect(&handle);
    // 4 KiB with no newline: crosses the 1 KiB cap mid-line.
    let blob = vec![b'x'; 4096];
    let _ = stream.write_all(&blob);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "too long\n");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "must close");
    handle.stop();
}

#[test]
fn dropping_a_completion_sends_the_abandoned_reply() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = Reactor::spawn(listener, ReactorConfig::default(), |_ctl| {
        Arc::new(|_conn: u64, _line: Line, mut completion: Completion| {
            completion.set_abandoned_reply(b"abandoned\n".to_vec());
            drop(completion);
        })
    })
    .unwrap();
    let mut stream = connect(&handle);
    stream.write_all(b"anyone there?\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "abandoned\n");
    drop(stream);
    handle.stop();
}

#[test]
fn a_slow_reader_backpressures_only_its_own_connection() {
    // One client asks for a reply far larger than the socket buffers
    // and does not read for a while; a second client must meanwhile be
    // served promptly — the reactor parks the unflushed bytes and
    // moves on.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = Reactor::spawn(listener, ReactorConfig::default(), |_ctl| {
        Arc::new(|_conn: u64, line: Line, completion: Completion| {
            if let Line::Complete(bytes) = line {
                if bytes == b"big" {
                    let mut reply = vec![b'b'; 8 * 1024 * 1024 - 1];
                    reply.push(b'\n');
                    completion.send(reply);
                } else {
                    completion.send(b"small\n".to_vec());
                }
            }
        })
    })
    .unwrap();
    let mut slow = connect(&handle);
    slow.write_all(b"big\n").unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the write jam
    let start = Instant::now();
    let mut fast = connect(&handle);
    fast.write_all(b"ping\n").unwrap();
    let mut reader = BufReader::new(fast.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "small\n");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "fast client stalled behind the slow one"
    );
    // Now drain the jammed reply fully: every byte must arrive.
    let mut slow_reader = BufReader::new(slow.try_clone().unwrap());
    let mut big = Vec::new();
    slow_reader.read_until(b'\n', &mut big).unwrap();
    assert_eq!(big.len(), 8 * 1024 * 1024);
    assert!(big.iter().take(big.len() - 1).all(|&b| b == b'b'));
    drop(slow);
    drop(fast);
    handle.stop();
}

#[test]
fn idle_connections_time_out_but_waiting_connections_do_not() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (tx, rx) = mpsc::channel::<Completion>();
    let tx = std::sync::Mutex::new(tx);
    let handle = Reactor::spawn(
        listener,
        ReactorConfig {
            idle_timeout: Duration::from_millis(200),
            ..ReactorConfig::default()
        },
        move |_ctl| {
            Arc::new(move |_conn: u64, _line: Line, completion: Completion| {
                // Park the completion: the connection is now *waiting*,
                // not idle.
                tx.lock().unwrap().send(completion).unwrap();
            })
        },
    )
    .unwrap();
    let idle = connect(&handle);
    let mut waiting = connect(&handle);
    waiting.write_all(b"work\n").unwrap();
    let parked = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    // Well past the idle timeout: the idle connection is gone, the
    // waiting one is not.
    std::thread::sleep(Duration::from_millis(600));
    let mut reader = BufReader::new(idle.try_clone().unwrap());
    let mut line = String::new();
    assert_eq!(
        reader.read_line(&mut line).unwrap(),
        0,
        "idle connection should have been closed"
    );
    parked.send(b"done\n".to_vec());
    let mut reader = BufReader::new(waiting.try_clone().unwrap());
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "done\n", "in-flight connection must survive idleness");
    assert!(handle.gauges().closed_idle >= 1);
    drop(waiting);
    handle.stop();
}

#[test]
fn gauges_track_hundreds_of_idle_connections_without_threads() {
    let handle = spawn_echo(ReactorConfig {
        max_connections: 512,
        ..ReactorConfig::default()
    });
    let mut conns: Vec<TcpStream> = Vec::new();
    for _ in 0..300 {
        conns.push(connect(&handle));
    }
    // One of them does real work so we know the reactor has observed
    // (accepted) everything queued before it.
    let last = conns.last_mut().unwrap();
    last.write_all(b"probe\n").unwrap();
    let mut reader = BufReader::new(last.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "PROBE\n");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let g = handle.gauges();
        if g.open == 300 && g.idle == 300 {
            break;
        }
        assert!(Instant::now() < deadline, "gauges never settled: {g:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.gauges().accepted_total, 300);
    drop(conns);
    handle.stop();
}

#[test]
fn stop_drains_pending_replies_before_closing() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = Reactor::spawn(listener, ReactorConfig::default(), |ctl| {
        Arc::new(move |_conn: u64, _line: Line, completion: Completion| {
            // Reply and immediately ask the reactor to stop: the reply
            // must still reach the peer (drain-before-close).
            completion.send(b"bye\n".to_vec());
            ctl.stop();
        })
    })
    .unwrap();
    let mut stream = connect(&handle);
    stream.write_all(b"quit\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "bye\n");
    handle.join();
    // The listener is gone: connecting now fails or is reset on use.
    let mut buf = [0u8; 1];
    match TcpStream::connect(stream.peer_addr().unwrap()) {
        Err(_) => {}
        Ok(mut s) => {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            assert_ne!(
                s.read(&mut buf).map(|n| n as i64).unwrap_or(-1),
                1,
                "stopped reactor must not serve"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Registry-backed gauge transitions: the reactor publishes its gauges
// and counters onto an obs::Registry (ReactorConfig::metrics), and each
// lifecycle transition must land as an exact delta there.
// ---------------------------------------------------------------------

/// Polls the registry until `pred` holds on a snapshot (10 s cap).
fn wait_for_snapshot(
    registry: &obs::Registry,
    what: &str,
    pred: impl Fn(&obs::Snapshot) -> bool,
) -> obs::Snapshot {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = registry.snapshot();
        if pred(&snap) {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "registry never reached: {what}\nlast snapshot: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn registry_tracks_write_blocked_through_drain() {
    let registry = obs::Registry::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = Reactor::spawn(
        listener,
        ReactorConfig {
            metrics: Some(registry.clone()),
            ..ReactorConfig::default()
        },
        |_ctl| {
            Arc::new(|_conn: u64, line: Line, completion: Completion| {
                if let Line::Complete(_) = line {
                    let mut reply = vec![b'b'; 8 * 1024 * 1024 - 1];
                    reply.push(b'\n');
                    completion.send(reply);
                }
            })
        },
    )
    .unwrap();
    let mut slow = connect(&handle);
    slow.write_all(b"big\n").unwrap();
    // The 8 MiB reply jams behind the unread socket: exactly this one
    // connection must show as write-blocked.
    wait_for_snapshot(&registry, "write_blocked == 1", |s| {
        s.gauge("reactor.write_blocked") == Some(1)
    });
    // Drain the reply; the gauge must return to 0 and the flush spans
    // must have landed in the stage.write histogram.
    let mut reader = BufReader::new(slow.try_clone().unwrap());
    let mut big = Vec::new();
    reader.read_until(b'\n', &mut big).unwrap();
    assert_eq!(big.len(), 8 * 1024 * 1024);
    let snap = wait_for_snapshot(&registry, "write_blocked drained", |s| {
        s.gauge("reactor.write_blocked") == Some(0)
    });
    assert!(
        snap.histo("stage.write").map(|h| h.count) > Some(0),
        "flush spans must be recorded: {snap:?}"
    );
    drop(slow);
    handle.stop();
}

#[test]
fn registry_counts_idle_timeout_culls_exactly() {
    let registry = obs::Registry::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = Reactor::spawn(
        listener,
        ReactorConfig {
            idle_timeout: Duration::from_millis(150),
            metrics: Some(registry.clone()),
            ..ReactorConfig::default()
        },
        |_ctl| {
            Arc::new(|_conn: u64, _line: Line, completion: Completion| {
                completion.send(b"ok\n".to_vec());
            })
        },
    )
    .unwrap();
    // One connection stays busy (periodic requests), one goes idle.
    let mut busy = connect(&handle);
    let idle = connect(&handle);
    wait_for_snapshot(&registry, "both connections open", |s| {
        s.gauge("reactor.open") == Some(2) && s.counter("reactor.accepted_total") == Some(2)
    });
    assert_eq!(registry.snapshot().counter("reactor.closed_idle"), Some(0));
    let mut reader = BufReader::new(busy.try_clone().unwrap());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        busy.write_all(b"ping\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok\n");
        let snap = registry.snapshot();
        if snap.counter("reactor.closed_idle") == Some(1) {
            // Exactly the idle connection was culled; the busy one and
            // the lifetime totals are untouched.
            assert_eq!(snap.gauge("reactor.open"), Some(1), "{snap:?}");
            assert_eq!(snap.counter("reactor.accepted_total"), Some(2));
            break;
        }
        assert!(Instant::now() < deadline, "idle cull never counted");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(idle);
    drop(busy);
    handle.stop();
}

#[test]
fn registry_shows_deferred_accepts_at_max_connections() {
    let registry = obs::Registry::new();
    let handle = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Reactor::spawn(
            listener,
            ReactorConfig {
                max_connections: 2,
                metrics: Some(registry.clone()),
                ..ReactorConfig::default()
            },
            |_ctl| {
                Arc::new(|_conn: u64, line: Line, completion: Completion| {
                    if let Line::Complete(bytes) = line {
                        let mut reply = bytes;
                        reply.push(b'\n');
                        completion.send(reply);
                    }
                })
            },
        )
        .unwrap()
    };
    let first = connect(&handle);
    let mut second = connect(&handle);
    second.write_all(b"probe\n").unwrap();
    let mut reader = BufReader::new(second.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "probe\n");
    wait_for_snapshot(&registry, "at capacity", |s| {
        s.counter("reactor.accepted_total") == Some(2) && s.gauge("reactor.open") == Some(2)
    });
    // A third peer connects into the backlog but must NOT be accepted
    // while the reactor is at capacity: accepted_total stays put.
    let mut third = connect(&handle);
    std::thread::sleep(Duration::from_millis(200));
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("reactor.accepted_total"),
        Some(2),
        "accept must be deferred at max_connections: {snap:?}"
    );
    // Freeing a slot admits the queued peer: exactly one more accept.
    drop(first);
    third.write_all(b"hello\n").unwrap();
    let mut reader = BufReader::new(third.try_clone().unwrap());
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "hello\n", "queued peer must be served once admitted");
    let snap = wait_for_snapshot(&registry, "deferred accept admitted", |s| {
        s.counter("reactor.accepted_total") == Some(3)
    });
    assert_eq!(snap.gauge("reactor.open"), Some(2), "{snap:?}");
    drop(second);
    drop(third);
    handle.stop();
}
