//! # reactor — a std-only non-blocking I/O readiness loop
//!
//! One thread, many connections: the reactor owns a non-blocking
//! `TcpListener` plus every accepted `TcpStream`, multiplexes them
//! through a hand-rolled `poll(2)` loop (see [`poll`] for the vendored
//! FFI shim — no external dependencies), and drives a per-connection
//! state machine for **framed newline read/write**. An idle connection
//! costs one buffer, never a thread.
//!
//! ```text
//!                 ┌──────────────── reactor thread ────────────────┐
//!   accept ──────▶│ listener ─┐                                    │
//!                 │           ▼        ┌─ conn 1: read buf ▸ lines │
//!   poll(2) ◀────▶│  readiness loop ──▶├─ conn 2: write buf ◂ seqs │
//!                 │           ▲        └─ conn N: idle (buffer)    │
//!   wake pipe ───▶│           │                                    │
//!                 └───────────┼────────────────────────────────────┘
//!                             │ on_line(conn, line, Completion)
//!                             ▼
//!                  handler (parse / dispatch to worker threads)
//!                             │ Completion::send(bytes)  [any thread]
//!                             └──────▶ completion queue + wake ─────▶
//! ```
//!
//! ## The contract
//!
//! * Each complete `\n`-terminated, non-blank line becomes one
//!   [`LineHandler::on_line`] call carrying a [`Completion`] — a
//!   one-shot, `Send` reply slot. The handler may resolve it inline or
//!   hand it to another thread; the reactor writes replies back **in
//!   per-connection request order** regardless of completion order
//!   (each line gets a sequence number; out-of-order completions park
//!   until their turn).
//! * Writes never block the loop: unflushed bytes sit in a
//!   per-connection buffer registered for `POLLOUT` (backpressure); a
//!   slow reader delays only its own connection.
//! * A line longer than [`ReactorConfig::max_line_bytes`] yields one
//!   [`Line::Oversized`] event; input from that connection is then
//!   discarded (there is no way to resynchronize mid-line), and the
//!   handler's reply — typically an error — is flushed before close.
//! * Connections idle longer than [`ReactorConfig::idle_timeout`] with
//!   no in-flight request are closed. A connection waiting on a
//!   completion is never idle-closed.
//! * [`ReactorCtl::stop`] stops accepting, waits (bounded by
//!   [`ReactorConfig::drain_grace`]) for outstanding completions and
//!   write buffers to drain, then closes everything — so a final
//!   goodbye line always reaches the peer.
//! * Dropping a [`Completion`] unresolved answers its line with the
//!   configured abandoned reply (or closes the connection when none
//!   was set) — a reply slot can never leak and wedge the ordering
//!   window.

pub mod poll;

use poll::{PollFd, WakePipe, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reactor knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Longest accepted line in bytes; longer input yields
    /// [`Line::Oversized`] and the connection stops reading.
    pub max_line_bytes: u64,
    /// Close connections idle (no buffered input/output, no in-flight
    /// request) longer than this.
    pub idle_timeout: Duration,
    /// Most simultaneous connections; beyond this the listener is left
    /// unpolled (pending peers queue in the accept backlog) until a
    /// slot frees up.
    pub max_connections: usize,
    /// On [`ReactorCtl::stop`], how long to keep flushing outstanding
    /// replies before force-closing.
    pub drain_grace: Duration,
    /// Observability registry to publish into. When set, the loop
    /// mirrors its occupancy gauges (`reactor.open`, `reactor.idle`,
    /// `reactor.read_blocked`, `reactor.write_blocked`), its lifetime
    /// counters (`reactor.accepted_total`, `reactor.closed_idle`), and
    /// the `stage.write` flush-latency histogram onto the registry once
    /// per loop iteration. `None` costs nothing.
    pub metrics: Option<obs::Registry>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_line_bytes: 8 * 1024 * 1024,
            idle_timeout: Duration::from_secs(300),
            max_connections: 1024,
            drain_grace: Duration::from_secs(1),
            metrics: None,
        }
    }
}

/// One framed input event.
#[derive(Debug)]
pub enum Line {
    /// A complete line, without its trailing newline. Blank
    /// (whitespace-only) lines are filtered out by the reactor and
    /// never reach the handler.
    Complete(Vec<u8>),
    /// The connection exceeded [`ReactorConfig::max_line_bytes`]
    /// without a newline. Reply (the connection closes after the reply
    /// flushes) — further input is discarded.
    Oversized,
}

/// The application callback: one call per framed line, invoked on the
/// reactor thread. Heavy work must be handed off — everything in here
/// stalls every connection.
pub trait LineHandler: Send + Sync {
    /// Handles one line from connection `conn`. The reply goes through
    /// `completion`, now or later, from any thread.
    fn on_line(&self, conn: u64, line: Line, completion: Completion);
}

impl<F: Fn(u64, Line, Completion) + Send + Sync> LineHandler for F {
    fn on_line(&self, conn: u64, line: Line, completion: Completion) {
        self(conn, line, completion)
    }
}

/// Occupancy gauges, updated by the reactor once per loop iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorGauges {
    /// Connections currently open.
    pub open: u64,
    /// Open connections with nothing buffered and nothing in flight.
    pub idle: u64,
    /// Connections holding a partial (not yet newline-terminated)
    /// input line.
    pub read_blocked: u64,
    /// Connections with unflushed output (peer reading slowly).
    pub write_blocked: u64,
    /// Connections accepted since startup.
    pub accepted_total: u64,
    /// Connections closed by the idle timeout since startup.
    pub closed_idle: u64,
}

/// A queued reply: resolved completion waiting to be slotted into its
/// connection's ordered write stream.
struct Reply {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// State shared between the reactor thread, [`ReactorCtl`] clones, and
/// outstanding [`Completion`]s.
struct CtlShared {
    wake: WakePipe,
    completions: Mutex<Vec<Reply>>,
    stopping: AtomicBool,
    open: AtomicU64,
    idle: AtomicU64,
    read_blocked: AtomicU64,
    write_blocked: AtomicU64,
    accepted_total: AtomicU64,
    closed_idle: AtomicU64,
}

impl CtlShared {
    fn push_reply(&self, reply: Reply) {
        self.completions
            .lock()
            .expect("reactor completions poisoned")
            .push(reply);
        self.wake.wake();
    }
}

/// Cloneable control handle: stop the loop, read the gauges.
#[derive(Clone)]
pub struct ReactorCtl {
    shared: Arc<CtlShared>,
}

impl ReactorCtl {
    /// Initiates shutdown: stop accepting, drain outstanding replies
    /// (bounded by [`ReactorConfig::drain_grace`]), close every
    /// connection, exit the loop. Idempotent.
    pub fn stop(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
    }

    /// Snapshot of the occupancy gauges.
    pub fn gauges(&self) -> ReactorGauges {
        let s = &self.shared;
        ReactorGauges {
            open: s.open.load(Ordering::SeqCst),
            idle: s.idle.load(Ordering::SeqCst),
            read_blocked: s.read_blocked.load(Ordering::SeqCst),
            write_blocked: s.write_blocked.load(Ordering::SeqCst),
            accepted_total: s.accepted_total.load(Ordering::SeqCst),
            closed_idle: s.closed_idle.load(Ordering::SeqCst),
        }
    }
}

/// A one-shot reply slot for one framed line. `Send` — resolve it from
/// any thread. Dropping it unresolved sends the abandoned reply set
/// via [`Completion::set_abandoned_reply`], or closes the connection
/// when none was set.
pub struct Completion {
    shared: Arc<CtlShared>,
    token: u64,
    seq: u64,
    resolved: bool,
    abandoned: Option<Vec<u8>>,
}

impl Completion {
    /// Replies with `bytes` (the application supplies any trailing
    /// newline) and keeps the connection open.
    pub fn send(mut self, bytes: Vec<u8>) {
        self.resolve(bytes, false);
    }

    /// Replies with `bytes`, then closes the connection once the reply
    /// has flushed — the goodbye path.
    pub fn send_close(mut self, bytes: Vec<u8>) {
        self.resolve(bytes, true);
    }

    /// Sets the reply to send if this completion is dropped
    /// unresolved (e.g. its owner shut down mid-job).
    pub fn set_abandoned_reply(&mut self, bytes: Vec<u8>) {
        self.abandoned = Some(bytes);
    }

    fn resolve(&mut self, bytes: Vec<u8>, close: bool) {
        if self.resolved {
            return;
        }
        self.resolved = true;
        self.shared.push_reply(Reply {
            token: self.token,
            seq: self.seq,
            bytes,
            close,
        });
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.resolved {
            match self.abandoned.take() {
                Some(bytes) => self.resolve(bytes, false),
                // No stand-in reply: the slot must still resolve or the
                // connection's ordering window wedges — close it.
                None => self.resolve(Vec::new(), true),
            }
        }
    }
}

/// Owner of a running reactor thread.
pub struct ReactorHandle {
    ctl: ReactorCtl,
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl ReactorHandle {
    /// The listener's bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable control handle.
    pub fn ctl(&self) -> ReactorCtl {
        self.ctl.clone()
    }

    /// Snapshot of the occupancy gauges.
    pub fn gauges(&self) -> ReactorGauges {
        self.ctl.gauges()
    }

    /// Requests shutdown and waits for the loop to exit.
    pub fn stop(self) {
        self.ctl.stop();
        let _ = self.thread.join();
    }

    /// Waits for the loop to exit (someone else calls
    /// [`ReactorCtl::stop`]).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// The reactor entry point.
pub struct Reactor;

impl Reactor {
    /// Takes ownership of `listener`, switches it non-blocking, and
    /// starts the readiness loop on its own thread. `make_handler`
    /// receives the loop's [`ReactorCtl`] (so the handler can stop the
    /// reactor or report its gauges) and returns the line handler.
    ///
    /// # Errors
    ///
    /// Socket/pipe/thread-spawn failures.
    pub fn spawn<F>(
        listener: TcpListener,
        config: ReactorConfig,
        make_handler: F,
    ) -> io::Result<ReactorHandle>
    where
        F: FnOnce(ReactorCtl) -> Arc<dyn LineHandler>,
    {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(CtlShared {
            wake: WakePipe::new()?,
            completions: Mutex::new(Vec::new()),
            stopping: AtomicBool::new(false),
            open: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            read_blocked: AtomicU64::new(0),
            write_blocked: AtomicU64::new(0),
            accepted_total: AtomicU64::new(0),
            closed_idle: AtomicU64::new(0),
        });
        let ctl = ReactorCtl {
            shared: shared.clone(),
        };
        let handler = make_handler(ctl.clone());
        let thread = std::thread::Builder::new()
            .name("reactor-io".to_string())
            .spawn(move || run_loop(listener, config, shared, handler))?;
        Ok(ReactorHandle { ctl, addr, thread })
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Accumulated input not yet framed into lines.
    read_buf: Vec<u8>,
    /// How far `read_buf` has been scanned for a newline.
    scanned: usize,
    /// Unflushed output.
    write_buf: Vec<u8>,
    /// Sequence number the next framed line will get.
    next_seq: u64,
    /// Sequence number whose reply writes next (per-connection order).
    next_write: u64,
    /// Replies that completed out of order, parked until their turn.
    parked: BTreeMap<u64, Reply>,
    /// Lines handed to the handler whose completions are outstanding.
    in_flight: u64,
    /// Input is discarded (oversized line or close-after-reply).
    reject_input: bool,
    /// Close once `write_buf` drains.
    close_when_flushed: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            next_seq: 0,
            next_write: 0,
            parked: BTreeMap::new(),
            in_flight: 0,
            reject_input: false,
            close_when_flushed: false,
            last_activity: Instant::now(),
        }
    }

    /// Whether the connection has no buffered work in either direction.
    fn is_quiescent(&self) -> bool {
        self.write_buf.is_empty() && self.in_flight == 0 && self.parked.is_empty()
    }

    /// Moves every reply whose turn has come into the write buffer.
    fn promote_parked(&mut self) {
        while let Some(reply) = self.parked.remove(&self.next_write) {
            self.next_write += 1;
            self.in_flight = self.in_flight.saturating_sub(1);
            self.write_buf.extend_from_slice(&reply.bytes);
            if reply.close {
                self.close_when_flushed = true;
                self.reject_input = true;
            }
        }
    }

    /// Flushes as much of the write buffer as the socket accepts.
    /// Returns `false` when the connection is dead.
    fn try_write(&mut self) -> bool {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.write_buf.drain(..n);
                    self.last_activity = Instant::now();
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }
}

/// Registry handles the loop publishes into, resolved once at startup
/// (see [`ReactorConfig::metrics`]). The gauges mirror the `CtlShared`
/// atomics; the monotonic counters publish deltas so registry restarts
/// of the surrounding service never double-count.
struct LoopObs {
    open: obs::Gauge,
    idle: obs::Gauge,
    read_blocked: obs::Gauge,
    write_blocked: obs::Gauge,
    accepted_total: obs::Counter,
    closed_idle: obs::Counter,
    write_ns: obs::Histo,
    published_accepted: u64,
    published_closed_idle: u64,
}

impl LoopObs {
    fn resolve(registry: &obs::Registry) -> LoopObs {
        LoopObs {
            open: registry.gauge("reactor.open"),
            idle: registry.gauge("reactor.idle"),
            read_blocked: registry.gauge("reactor.read_blocked"),
            write_blocked: registry.gauge("reactor.write_blocked"),
            accepted_total: registry.counter("reactor.accepted_total"),
            closed_idle: registry.counter("reactor.closed_idle"),
            write_ns: registry.histo("stage.write"),
            published_accepted: 0,
            published_closed_idle: 0,
        }
    }

    /// Mirrors the shared gauge atomics onto the registry.
    fn publish(&mut self, shared: &CtlShared) {
        self.open.set(shared.open.load(Ordering::SeqCst));
        self.idle.set(shared.idle.load(Ordering::SeqCst));
        self.read_blocked
            .set(shared.read_blocked.load(Ordering::SeqCst));
        self.write_blocked
            .set(shared.write_blocked.load(Ordering::SeqCst));
        let accepted = shared.accepted_total.load(Ordering::SeqCst);
        self.accepted_total.add(accepted - self.published_accepted);
        self.published_accepted = accepted;
        let closed = shared.closed_idle.load(Ordering::SeqCst);
        self.closed_idle.add(closed - self.published_closed_idle);
        self.published_closed_idle = closed;
    }
}

/// [`Conn::try_write`] with the flush timed into `stage.write` when a
/// registry is wired (only attempted flushes are recorded — an empty
/// buffer never reaches here).
fn timed_write(conn: &mut Conn, loop_obs: &Option<LoopObs>) -> bool {
    match loop_obs {
        Some(o) => {
            let _span = obs::Span::enter(&o.write_ns);
            conn.try_write()
        }
        None => conn.try_write(),
    }
}

fn run_loop(
    listener: TcpListener,
    config: ReactorConfig,
    shared: Arc<CtlShared>,
    handler: Arc<dyn LineHandler>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut stop_deadline: Option<Instant> = None;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut loop_obs = config.metrics.as_ref().map(LoopObs::resolve);

    loop {
        let stopping = shared.stopping.load(Ordering::SeqCst);
        if stopping {
            let deadline =
                *stop_deadline.get_or_insert_with(|| Instant::now() + config.drain_grace);
            let drained = conns.values().all(Conn::is_quiescent)
                && shared
                    .completions
                    .lock()
                    .expect("reactor completions poisoned")
                    .is_empty();
            if drained || Instant::now() >= deadline {
                break;
            }
        }

        // Build the poll set: wake pipe, listener (unless stopping or
        // at capacity), then one slot per connection.
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
        fds.push(shared.wake.poll_fd());
        let poll_listener = !stopping && conns.len() < config.max_connections;
        if poll_listener {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let conn_base = fds.len();
        let mut order: Vec<u64> = Vec::with_capacity(conns.len());
        for (&token, conn) in &conns {
            let mut events = 0i16;
            if !conn.reject_input && !stopping {
                events |= POLLIN;
            }
            if !conn.write_buf.is_empty() {
                events |= POLLOUT;
            }
            // A fully passive connection (input rejected, nothing to
            // write — just waiting on a completion) is parked with a
            // negative fd, which poll(2) ignores: polling it with zero
            // events would still surface level-triggered POLLHUP every
            // iteration and spin the loop.
            let fd = if events == 0 {
                -1
            } else {
                conn.stream.as_raw_fd()
            };
            fds.push(PollFd::new(fd, events));
            order.push(token);
        }

        let timeout_ms = poll_timeout(&conns, &config, stopping);
        if poll::poll_fds(&mut fds, timeout_ms).is_err() {
            // Only unrecoverable poll errors land here (EINTR is
            // retried inside); without readiness there is no loop.
            break;
        }

        // 1. Wake pipe: drain it, then sweep the completion queue.
        if fds[0].revents & POLLIN != 0 {
            shared.wake.drain();
        }
        let replies: Vec<Reply> = std::mem::take(
            &mut *shared
                .completions
                .lock()
                .expect("reactor completions poisoned"),
        );
        for reply in replies {
            let (token, seq) = (reply.token, reply.seq);
            if let Some(conn) = conns.get_mut(&token) {
                conn.parked.insert(seq, reply);
            }
            // Replies for already-closed connections are dropped.
        }

        // 2. New connections.
        if poll_listener && fds[1].revents & POLLIN != 0 {
            accept_ready(&listener, &config, &shared, &mut conns, &mut next_token);
        }

        // 3. Per-connection readiness.
        let mut dead: Vec<u64> = Vec::new();
        for (i, &token) in order.iter().enumerate() {
            let revents = fds[conn_base + i].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if revents & (POLLERR | POLLNVAL) != 0 {
                dead.push(token);
                continue;
            }
            if revents & POLLIN != 0
                && !read_and_frame(conn, token, &config, &shared, &handler, &mut scratch)
            {
                // Peer closed its write half (or the socket failed).
                // Keep the connection only if replies are still owed —
                // they may be mid-completion on a worker thread.
                conn.reject_input = true;
                if conn.is_quiescent() {
                    dead.push(token);
                    continue;
                }
                conn.close_when_flushed = true;
            }
            if revents & POLLHUP != 0 && conn.is_quiescent() {
                dead.push(token);
                continue;
            }
            if revents & POLLOUT != 0 && !timed_write(conn, &loop_obs) {
                dead.push(token);
            }
        }

        // 4. Slot newly completed replies into their write streams and
        // flush opportunistically (most replies go out without ever
        // registering POLLOUT).
        for (&token, conn) in conns.iter_mut() {
            if !conn.parked.is_empty() {
                conn.promote_parked();
            }
            if !conn.write_buf.is_empty() && !timed_write(conn, &loop_obs) {
                dead.push(token);
                continue;
            }
            if conn.close_when_flushed && conn.write_buf.is_empty() && conn.in_flight == 0 {
                dead.push(token);
            }
        }

        // 5. Idle sweep.
        if !stopping {
            let now = Instant::now();
            for (&token, conn) in &conns {
                if conn.is_quiescent()
                    && !conn.close_when_flushed
                    && now.duration_since(conn.last_activity) >= config.idle_timeout
                {
                    dead.push(token);
                    shared.closed_idle.fetch_add(1, Ordering::SeqCst);
                }
            }
        }

        for token in dead {
            conns.remove(&token);
        }

        publish_gauges(&shared, &conns);
        if let Some(o) = loop_obs.as_mut() {
            o.publish(&shared);
        }
    }

    // Final flush already happened in the drain loop; just close.
    conns.clear();
    publish_gauges(&shared, &conns);
    if let Some(o) = loop_obs.as_mut() {
        o.publish(&shared);
    }
}

fn poll_timeout(conns: &HashMap<u64, Conn>, config: &ReactorConfig, stopping: bool) -> i32 {
    if stopping {
        return 20;
    }
    let now = Instant::now();
    let next_deadline = conns
        .values()
        .filter(|c| c.is_quiescent() && !c.close_when_flushed)
        .map(|c| c.last_activity + config.idle_timeout)
        .min();
    match next_deadline {
        None => -1,
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(now).as_millis();
            remaining.min(i32::MAX as u128) as i32
        }
    }
}

fn accept_ready(
    listener: &TcpListener,
    config: &ReactorConfig,
    shared: &CtlShared,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    while conns.len() < config.max_connections {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                conns.insert(token, Conn::new(stream));
                shared.accepted_total.fetch_add(1, Ordering::SeqCst);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything available on `conn`, framing complete lines into
/// handler calls. Returns `false` when the peer closed or the socket
/// died.
fn read_and_frame(
    conn: &mut Conn,
    token: u64,
    config: &ReactorConfig,
    shared: &Arc<CtlShared>,
    handler: &Arc<dyn LineHandler>,
    scratch: &mut [u8],
) -> bool {
    let mut alive = true;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                alive = false;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&scratch[..n]);
                conn.last_activity = Instant::now();
                if n < scratch.len() {
                    break;
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                alive = false;
                break;
            }
        }
    }

    // Frame complete lines.
    while !conn.reject_input {
        let Some(pos) = conn.read_buf[conn.scanned..]
            .iter()
            .position(|&b| b == b'\n')
        else {
            conn.scanned = conn.read_buf.len();
            break;
        };
        let end = conn.scanned + pos;
        let mut line: Vec<u8> = conn.read_buf.drain(..=end).collect();
        conn.scanned = 0;
        line.pop(); // the newline
        if line.iter().all(u8::is_ascii_whitespace) {
            continue; // blank keep-alive line: no reply slot
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.in_flight += 1;
        handler.on_line(
            token,
            Line::Complete(line),
            Completion {
                shared: shared.clone(),
                token,
                seq,
                resolved: false,
                abandoned: None,
            },
        );
    }

    // A partial line past the cap can never complete — hand the
    // handler one Oversized event and discard input from here on.
    if !conn.reject_input && conn.read_buf.len() as u64 >= config.max_line_bytes {
        conn.reject_input = true;
        conn.read_buf = Vec::new();
        conn.scanned = 0;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.in_flight += 1;
        handler.on_line(
            token,
            Line::Oversized,
            Completion {
                shared: shared.clone(),
                token,
                seq,
                resolved: false,
                abandoned: None,
            },
        );
    }
    if conn.reject_input {
        conn.read_buf = Vec::new();
        conn.scanned = 0;
    }
    alive
}

fn publish_gauges(shared: &CtlShared, conns: &HashMap<u64, Conn>) {
    let open = conns.len() as u64;
    let idle = conns
        .values()
        .filter(|c| c.is_quiescent() && c.read_buf.is_empty())
        .count() as u64;
    let read_blocked = conns.values().filter(|c| !c.read_buf.is_empty()).count() as u64;
    let write_blocked = conns.values().filter(|c| !c.write_buf.is_empty()).count() as u64;
    shared.open.store(open, Ordering::SeqCst);
    shared.idle.store(idle, Ordering::SeqCst);
    shared.read_blocked.store(read_blocked, Ordering::SeqCst);
    shared.write_blocked.store(write_blocked, Ordering::SeqCst);
}
