//! The vendored `poll(2)` shim: the only FFI surface in the workspace's
//! serving stack.
//!
//! The reactor needs exactly three kernel facilities that `std` does
//! not expose: readiness multiplexing over many descriptors
//! (`poll(2)`), a self-wakeup channel that a non-reactor thread can
//! ping (`pipe(2)`), and raw reads/writes on that pipe. Everything
//! else — non-blocking sockets, accept, socket reads/writes — goes
//! through `std::net`. Declaring these five libc symbols directly
//! keeps the crate dependency-free, consistent with the workspace's
//! vendored-shim policy.
//!
//! The wake pipe is deliberately *blocking* on both ends, which sounds
//! backwards for a non-blocking reactor but is safe by construction:
//!
//! * the write side is guarded by an atomic `pending` flag, so at most
//!   **one** byte is ever outstanding — a write can never fill the
//!   pipe and block the waker;
//! * the read side is only drained after `poll` reported `POLLIN`, so
//!   a read can never block the reactor.

use std::ffi::{c_int, c_void};
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

/// `poll` readiness flag: data available to read.
pub const POLLIN: i16 = 0x001;
/// `poll` readiness flag: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `poll` result flag: error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// `poll` result flag: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// `poll` result flag: the descriptor was not open.
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd` as `poll(2)` expects it.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-reported events, valid after [`poll_fds`] returns.
    pub revents: i16,
}

impl PollFd {
    /// A watch on `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

// `nfds_t` is `unsigned long` on Linux and `unsigned int` on the BSDs
// (including macOS).
#[cfg(target_os = "linux")]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// Waits for readiness on `fds`. `timeout_ms < 0` blocks until an
/// event; `0` polls. `EINTR` is retried internally, so a signal can
/// never abort the reactor loop.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The reactor's self-wakeup channel: any thread may [`WakePipe::wake`]
/// to make a blocked [`poll_fds`] return. The `pending` flag collapses
/// wake storms to a single pipe byte (see the module docs for why the
/// blocking pipe is safe).
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
    pending: AtomicBool,
}

impl WakePipe {
    /// A fresh pipe pair.
    ///
    /// # Errors
    ///
    /// Propagates `pipe(2)` failure (descriptor exhaustion).
    pub fn new() -> io::Result<WakePipe> {
        let mut fds: [c_int; 2] = [0; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
            pending: AtomicBool::new(false),
        })
    }

    /// The descriptor the reactor includes in its poll set (`POLLIN`).
    pub fn poll_fd(&self) -> PollFd {
        PollFd::new(self.read_fd, POLLIN)
    }

    /// Makes the next (or current) [`poll_fds`] call return. Coalesces
    /// concurrent wakes: only the first writer since the last
    /// [`WakePipe::drain`] touches the pipe.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let byte = [1u8];
            let _ = unsafe { write(self.write_fd, byte.as_ptr().cast::<c_void>(), 1) };
        }
    }

    /// Consumes pending wake bytes. Call only after `poll` reported
    /// `POLLIN` on [`WakePipe::poll_fd`]. Clearing the flag *before*
    /// reading keeps the protocol lossless: a wake that races this
    /// drain either lands its byte (next poll returns immediately) or
    /// observes `pending` still true from an earlier wake whose byte we
    /// are about to consume — and in that window the waker's work item
    /// is already queued, so the post-drain queue sweep sees it.
    pub fn drain(&self) {
        self.pending.store(false, Ordering::SeqCst);
        let mut buf = [0u8; 64];
        let _ = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_makes_poll_return_and_drain_resets() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [pipe.poll_fd()];
        // Nothing pending: a zero-timeout poll sees no readiness.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        pipe.wake();
        pipe.wake(); // coalesced: still one byte
        let mut fds = [pipe.poll_fd()];
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        pipe.drain();
        let mut fds = [pipe.poll_fd()];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn cross_thread_wake_unblocks_a_sleeping_poll() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = pipe.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            waker.wake();
        });
        let mut fds = [pipe.poll_fd()];
        let start = std::time::Instant::now();
        assert_eq!(poll_fds(&mut fds, 10_000).unwrap(), 1);
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        handle.join().unwrap();
    }
}
