//! A network of QPUs building one global distributed circuit.
//!
//! [`DistributedMachine`] models the COMPAS execution substrate: `k` QPU
//! nodes, each holding a block of data qubits and a pool of communication
//! ancillas, connected by a [`Topology`]. Protocol code requests Bell
//! pairs and teleoperations; the machine
//!
//! * allocates and recycles communication qubits (qubit reuse, §3.6),
//! * physically realises long-range Bell pairs by entanglement swapping
//!   when endpoints are not adjacent (§2.5),
//! * injects the depolarizing link noise of Eq. (5) on every distributed
//!   Bell half, and
//! * records consumption in a [`ResourceLedger`].
//!
//! The product is a single [`Circuit`] over the union register, ready for
//! any of the simulators, plus the ledger used to check Tables 1–3.

use circuit::circuit::{Cbit, Circuit, Instruction};
use circuit::gate::{Gate, Qubit};
use std::collections::HashMap;

use crate::ledger::{ResourceLedger, TeleopKind};
use crate::teleop;
use crate::topology::{NodeId, Topology};

/// A distributed-QPU machine assembling one global circuit.
#[derive(Debug, Clone)]
pub struct DistributedMachine {
    k: usize,
    data_per_node: usize,
    topology: Topology,
    /// Depolarizing probability `p` of Eq. (5) applied to the travelling
    /// half of every nearest-neighbour Bell pair.
    bell_error: f64,
    circuit: Circuit,
    ledger: ResourceLedger,
    /// Which node owns each qubit of the global register.
    qubit_node: Vec<NodeId>,
    /// Recycled communication qubits per node (measured + reset).
    comm_free: Vec<Vec<Qubit>>,
    /// Whether freed communication qubits are recycled (§3.6). Disabled
    /// only by the qubit-reuse ablation.
    reuse_comm: bool,
    /// Per-link overrides of `bell_error`, keyed by the normalised
    /// (low, high) node pair — the channel heterogeneity of §7.
    link_error: HashMap<(NodeId, NodeId), f64>,
}

impl DistributedMachine {
    /// Creates a machine with `k` nodes of `data_per_node` data qubits on
    /// the given topology, with noiseless links.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, data_per_node: usize, topology: Topology) -> Self {
        assert!(k > 0, "a machine needs at least one node");
        let circuit = Circuit::new(k * data_per_node, 0);
        let qubit_node = (0..k)
            .flat_map(|node| std::iter::repeat_n(node, data_per_node))
            .collect();
        DistributedMachine {
            k,
            data_per_node,
            topology,
            bell_error: 0.0,
            circuit,
            ledger: ResourceLedger::new(),
            qubit_node,
            comm_free: vec![Vec::new(); k],
            reuse_comm: true,
            link_error: HashMap::new(),
        }
    }

    /// Disables communication-qubit recycling (the §3.6 ablation): every
    /// teleoperation allocates fresh qubits, exposing the memory cost
    /// that qubit reuse avoids.
    pub fn without_qubit_reuse(mut self) -> Self {
        self.reuse_comm = false;
        self
    }

    /// Sets the Bell-pair distribution error: each nearest-neighbour link
    /// depolarizes the travelling half with probability `p` (Eq. 5).
    pub fn with_bell_error(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.bell_error = p;
        self
    }

    /// Overrides the depolarizing strength of one physical link — the
    /// channel heterogeneity the paper's §7 lists as future work. The
    /// link is undirected; unlisted links keep the global `bell_error`.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are equal, out of range, or `p ∉ [0, 1]`.
    pub fn set_link_error(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!(a < self.k && b < self.k, "node out of range");
        assert_ne!(a, b, "a link joins two distinct nodes");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.link_error.insert((a.min(b), a.max(b)), p);
    }

    /// The depolarizing strength of the physical link `(a, b)`.
    pub fn link_error(&self, a: NodeId, b: NodeId) -> f64 {
        self.link_error
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(self.bell_error)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.k
    }

    /// Data qubits per node.
    pub fn data_per_node(&self) -> usize {
        self.data_per_node
    }

    /// The network topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Global index of data qubit `idx` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `idx` is out of range.
    pub fn data_qubit(&self, node: NodeId, idx: usize) -> Qubit {
        assert!(node < self.k, "node out of range");
        assert!(idx < self.data_per_node, "data qubit index out of range");
        node * self.data_per_node + idx
    }

    /// The node owning a global qubit index.
    pub fn node_of(&self, qubit: Qubit) -> NodeId {
        self.qubit_node[qubit]
    }

    /// The circuit assembled so far.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access for appending *local* operations; prefer
    /// [`DistributedMachine::local_gate`] which enforces locality.
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Consumes the machine, returning the circuit and the ledger.
    pub fn finish(self) -> (Circuit, ResourceLedger) {
        (self.circuit, self.ledger)
    }

    /// The resource ledger.
    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    /// Mutable access to the ledger, for protocol layers that account
    /// composite operations (e.g. a batch of cat copies standing in for
    /// teleported Toffolis).
    pub fn ledger_mut(&mut self) -> &mut ResourceLedger {
        &mut self.ledger
    }

    /// Appends a gate after checking all its qubits live on one node.
    ///
    /// # Panics
    ///
    /// Panics if the gate spans nodes — that would be an unphysical
    /// direct remote gate; use the teleoperations instead.
    pub fn local_gate(&mut self, gate: Gate) -> &mut Self {
        let qubits = gate.qubits();
        let node = self.node_of(qubits[0]);
        for &q in &qubits[1..] {
            assert_eq!(
                self.node_of(q),
                node,
                "gate {gate} spans nodes {} and {}; use a teleoperation",
                node,
                self.node_of(q)
            );
        }
        self.circuit.push(Instruction::Gate(gate));
        self
    }

    /// Allocates a fresh (or recycled) `|0⟩` communication qubit on `node`.
    pub fn alloc_comm(&mut self, node: NodeId) -> Qubit {
        assert!(node < self.k, "node out of range");
        if let Some(q) = self.comm_free[node].pop() {
            q
        } else {
            let q = self.circuit.add_qubits(1);
            self.qubit_node.push(node);
            q
        }
    }

    /// Returns a used communication qubit to `node`'s pool, resetting it.
    pub fn free_comm(&mut self, qubit: Qubit) {
        let node = self.node_of(qubit);
        self.circuit.reset(qubit);
        if self.reuse_comm {
            self.comm_free[node].push(qubit);
        }
    }

    /// Allocates `count` fresh classical bits, returning the first index.
    pub fn alloc_cbits(&mut self, count: usize) -> Cbit {
        self.circuit.add_cbits(count)
    }

    /// Creates one end-to-end Bell pair between `a` and `b`, returning
    /// `(qubit_at_a, qubit_at_b)`.
    ///
    /// Adjacent nodes get a direct pair; distant nodes get a chain of
    /// nearest-neighbour pairs stitched by entanglement swapping
    /// (teleporting the intermediate halves), consuming `distance` raw
    /// pairs as in §2.5.
    pub fn create_bell(&mut self, a: NodeId, b: NodeId) -> (Qubit, Qubit) {
        assert_ne!(a, b, "a Bell pair needs two distinct nodes");
        let path = self.topology.path(a, b, self.k);
        let hops = path.len() - 1;

        // Nearest-neighbour pairs along the path.
        let mut pairs = Vec::with_capacity(hops);
        for w in path.windows(2) {
            let qa = self.alloc_comm(w[0]);
            let qb = self.alloc_comm(w[1]);
            teleop::prepare_bell(&mut self.circuit, qa, qb);
            let link_p = self.link_error(w[0], w[1]);
            if link_p > 0.0 {
                // Eq. (5): one-qubit depolarizing channel of strength p on
                // the half that traversed the link. Our `Depolarizing`
                // instruction applies a uniform non-identity Pauli with its
                // probability, so strength 3p/4 reproduces the channel.
                self.circuit.push(Instruction::Depolarizing {
                    qubits: vec![qb],
                    p: 0.75 * link_p,
                });
            }
            pairs.push((qa, qb));
        }

        // Entanglement swapping: teleport the left half of each later pair
        // through the accumulated pair, extending its reach by one hop.
        let (end_a, mut end_b) = pairs[0];
        for &(qa, qb) in &pairs[1..] {
            let c = self.alloc_cbits(2);
            teleop::teledata(&mut self.circuit, end_b, qa, qb, c, c + 1);
            self.ledger.record_classical_bits(2);
            self.free_comm(end_b);
            self.free_comm(qa);
            end_b = qb;
        }

        self.ledger.record_bell_pair(a, b, hops);
        (end_a, end_b)
    }

    /// Teleports the state of `src` onto `dst` (on a different node).
    ///
    /// `dst` must be a `|0⟩` qubit (fresh ancilla or a reset data qubit).
    /// `src` ends measured and reset, ready for reuse.
    pub fn teleport(&mut self, src: Qubit, dst: Qubit) {
        let (na, nb) = (self.node_of(src), self.node_of(dst));
        assert_ne!(na, nb, "teleport endpoints must be on different nodes");
        let (ebit_src, ebit_dst) = self.create_bell(na, nb);
        // Move the Bell half onto the destination qubit: since `dst` is
        // |0⟩, a local CNOT + CNOT back is unnecessary — instead teleport
        // directly onto the ebit half and then locally swap it into place.
        let c = self.alloc_cbits(2);
        teleop::teledata(&mut self.circuit, src, ebit_src, ebit_dst, c, c + 1);
        if ebit_dst != dst {
            self.circuit.swap(ebit_dst, dst);
            self.free_comm(ebit_dst);
        }
        self.circuit.reset(src);
        self.free_comm(ebit_src);
        self.ledger.record_teleop(TeleopKind::Teledata);
        self.ledger.record_classical_bits(2);
    }

    /// Applies a CNOT whose control and target live on different nodes
    /// via gate teleportation (Fig 1b), consuming one Bell pair.
    pub fn remote_cx(&mut self, control: Qubit, target: Qubit) {
        let (na, nb) = (self.node_of(control), self.node_of(target));
        assert_ne!(na, nb, "remote_cx endpoints must differ; use local_gate");
        let (ebit_ctl, ebit_tgt) = self.create_bell(na, nb);
        let c = self.alloc_cbits(2);
        teleop::telegate_cx(
            &mut self.circuit,
            control,
            target,
            ebit_ctl,
            ebit_tgt,
            c,
            c + 1,
        );
        self.free_comm(ebit_ctl);
        self.free_comm(ebit_tgt);
        self.ledger.record_teleop(TeleopKind::TelegateCnot);
        self.ledger.record_classical_bits(2);
    }

    /// Applies a Toffoli with both controls on one node and the target on
    /// another, via one Bell pair (Fig 6d).
    pub fn remote_ccx(&mut self, control_a: Qubit, control_b: Qubit, target: Qubit) {
        let nc = self.node_of(control_a);
        assert_eq!(
            nc,
            self.node_of(control_b),
            "both controls must share a node"
        );
        let nt = self.node_of(target);
        assert_ne!(nc, nt, "remote_ccx target must be on another node");
        let (ebit_tgt, ebit_ctl) = self.create_bell(nt, nc);
        let c = self.alloc_cbits(2);
        teleop::telegate_ccx(
            &mut self.circuit,
            control_a,
            control_b,
            target,
            ebit_tgt,
            ebit_ctl,
            c,
            c + 1,
        );
        self.free_comm(ebit_tgt);
        self.free_comm(ebit_ctl);
        self.ledger.record_teleop(TeleopKind::TelegateToffoli);
        self.ledger.record_classical_bits(2);
    }

    /// Teleports `src` onto a fresh qubit on `dst_node`, returning it.
    ///
    /// Unlike [`DistributedMachine::teleport`], the destination is the
    /// Bell half itself, saving a local SWAP. `src` ends reset.
    pub fn teleport_to_node(&mut self, src: Qubit, dst_node: NodeId) -> Qubit {
        let na = self.node_of(src);
        assert_ne!(
            na, dst_node,
            "teleport endpoints must be on different nodes"
        );
        let (ebit_src, ebit_dst) = self.create_bell(na, dst_node);
        let c = self.alloc_cbits(2);
        teleop::teledata(&mut self.circuit, src, ebit_src, ebit_dst, c, c + 1);
        self.circuit.reset(src);
        self.free_comm(ebit_src);
        self.ledger.record_teleop(TeleopKind::Teledata);
        self.ledger.record_classical_bits(2);
        ebit_dst
    }

    /// Applies many remote CNOTs in parallel: all Bell pairs are created
    /// first, then every telegate runs, then the communication qubits are
    /// recycled — so the layer's depth does not grow with the batch size.
    ///
    /// # Panics
    ///
    /// Panics if any pair shares a node (use [`DistributedMachine::local_gate`]).
    pub fn remote_cx_batch(&mut self, ops: &[(Qubit, Qubit)]) {
        let bells: Vec<(Qubit, Qubit)> = ops
            .iter()
            .map(|&(control, target)| {
                let (na, nb) = (self.node_of(control), self.node_of(target));
                assert_ne!(na, nb, "remote_cx endpoints must differ");
                self.create_bell(na, nb)
            })
            .collect();
        for (&(control, target), &(ebit_ctl, ebit_tgt)) in ops.iter().zip(&bells) {
            let c = self.alloc_cbits(2);
            teleop::telegate_cx(
                &mut self.circuit,
                control,
                target,
                ebit_ctl,
                ebit_tgt,
                c,
                c + 1,
            );
            self.ledger.record_teleop(TeleopKind::TelegateCnot);
            self.ledger.record_classical_bits(2);
        }
        for &(ebit_ctl, ebit_tgt) in &bells {
            self.free_comm(ebit_ctl);
            self.free_comm(ebit_tgt);
        }
    }

    /// Teleports many qubits to their destination nodes in parallel,
    /// returning the new holders. See [`DistributedMachine::teleport_to_node`].
    pub fn teleport_batch(&mut self, moves: &[(Qubit, NodeId)]) -> Vec<Qubit> {
        let bells: Vec<(Qubit, Qubit)> = moves
            .iter()
            .map(|&(src, dst_node)| {
                let na = self.node_of(src);
                assert_ne!(na, dst_node, "teleport endpoints must differ");
                self.create_bell(na, dst_node)
            })
            .collect();
        let mut holders = Vec::with_capacity(moves.len());
        for (&(src, _), &(ebit_src, ebit_dst)) in moves.iter().zip(&bells) {
            let c = self.alloc_cbits(2);
            teleop::teledata(&mut self.circuit, src, ebit_src, ebit_dst, c, c + 1);
            self.circuit.reset(src);
            self.free_comm(ebit_src);
            self.ledger.record_teleop(TeleopKind::Teledata);
            self.ledger.record_classical_bits(2);
            holders.push(ebit_dst);
        }
        holders
    }

    /// Cat-copies many source qubits onto fresh qubits on their
    /// destination nodes in parallel. Release each with
    /// [`DistributedMachine::cat_uncopy`] (uncopies are naturally
    /// parallel: they only measure and feed forward).
    pub fn cat_copy_batch(&mut self, srcs: &[(Qubit, NodeId)]) -> Vec<Qubit> {
        let bells: Vec<(Qubit, Qubit)> = srcs
            .iter()
            .map(|&(src, dst_node)| {
                let na = self.node_of(src);
                assert_ne!(na, dst_node, "cat copy must target another node");
                self.create_bell(na, dst_node)
            })
            .collect();
        let mut copies = Vec::with_capacity(srcs.len());
        for (&(src, _), &(ebit_src, ebit_dst)) in srcs.iter().zip(&bells) {
            let c = self.alloc_cbits(1);
            teleop::cat_copy(&mut self.circuit, src, ebit_src, ebit_dst, c);
            self.free_comm(ebit_src);
            self.ledger.record_classical_bits(1);
            copies.push(ebit_dst);
        }
        copies
    }

    /// Cat-copies `src`'s computational-basis value onto a fresh qubit on
    /// `dst_node`, returning the copy. Release with
    /// [`DistributedMachine::cat_uncopy`]. Consumes one Bell pair.
    ///
    /// One copy can control arbitrarily many gates on `dst_node`, which is
    /// how the telegate CSWAP shares a single teleported control across
    /// `n` Toffolis (§3.3).
    pub fn cat_copy(&mut self, src: Qubit, dst_node: NodeId) -> Qubit {
        let na = self.node_of(src);
        assert_ne!(na, dst_node, "cat copy must target another node");
        let (ebit_src, ebit_dst) = self.create_bell(na, dst_node);
        let c = self.alloc_cbits(1);
        teleop::cat_copy(&mut self.circuit, src, ebit_src, ebit_dst, c);
        self.free_comm(ebit_src);
        self.ledger.record_classical_bits(1);
        ebit_dst
    }

    /// Releases a cat copy, restoring `src` exactly and recycling the
    /// copy's qubit.
    pub fn cat_uncopy(&mut self, copy: Qubit, src: Qubit) {
        let c = self.alloc_cbits(1);
        teleop::cat_uncopy(&mut self.circuit, copy, src, c);
        self.free_comm(copy);
        self.ledger.record_classical_bits(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::matrix::TraceKeep;
    use qsim::runner::run_shot;
    use qsim::statevector::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fidelity of the reduced state on the first `keep` qubits of `out`
    /// against the `keep`-qubit pure state `want`.
    fn reduced_fidelity(out: &StateVector, keep: usize, want: &StateVector) -> f64 {
        let total = out.num_qubits();
        let rho = out.to_density();
        let reduced = rho.partial_trace(1 << keep, 1 << (total - keep), TraceKeep::A);
        reduced
            .mul_vec(want.amplitudes())
            .iter()
            .zip(want.amplitudes())
            .map(|(a, b)| (b.conj() * *a).re)
            .sum()
    }

    #[test]
    fn layout_assigns_data_qubits_contiguously() {
        let m = DistributedMachine::new(3, 2, Topology::Line);
        assert_eq!(m.data_qubit(0, 0), 0);
        assert_eq!(m.data_qubit(2, 1), 5);
        assert_eq!(m.node_of(3), 1);
    }

    #[test]
    #[should_panic(expected = "spans nodes")]
    fn local_gate_rejects_cross_node_gates() {
        let mut m = DistributedMachine::new(2, 1, Topology::Line);
        m.local_gate(Gate::Cx {
            control: 0,
            target: 1,
        });
    }

    #[test]
    fn comm_qubits_are_recycled() {
        let mut m = DistributedMachine::new(2, 1, Topology::Line);
        let q = m.alloc_comm(0);
        m.free_comm(q);
        assert_eq!(m.alloc_comm(0), q);
    }

    #[test]
    fn adjacent_bell_pair_is_entangled() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = DistributedMachine::new(2, 1, Topology::Line);
        let (qa, qb) = m.create_bell(0, 1);
        let cb = m.alloc_cbits(2);
        m.circuit_mut().measure(qa, cb).measure(qb, cb + 1);
        let circ = m.circuit().clone();
        for _ in 0..20 {
            let out = run_shot(&circ, &StateVector::new(circ.num_qubits()), &mut rng);
            assert_eq!(out.cbits[cb], out.cbits[cb + 1]);
        }
        assert_eq!(m.ledger().bell_pairs(), 1);
        assert_eq!(m.ledger().raw_bell_pairs(), 1);
    }

    #[test]
    fn distant_bell_pair_uses_swapping() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = DistributedMachine::new(4, 1, Topology::Line);
        let (qa, qb) = m.create_bell(0, 3);
        let cb = m.alloc_cbits(2);
        m.circuit_mut().measure(qa, cb).measure(qb, cb + 1);
        let circ = m.circuit().clone();
        for _ in 0..20 {
            let out = run_shot(&circ, &StateVector::new(circ.num_qubits()), &mut rng);
            assert_eq!(out.cbits[cb], out.cbits[cb + 1]);
        }
        assert_eq!(m.ledger().bell_pairs(), 1);
        assert_eq!(m.ledger().raw_bell_pairs(), 3);
        assert_eq!(m.ledger().teleop_count(TeleopKind::EntanglementSwap), 2);
    }

    #[test]
    fn machine_teleport_moves_state_across_nodes() {
        let mut rng = StdRng::seed_from_u64(4);
        let amps = qsim::qrand::random_pure_state(1, &mut rng);
        let mut m = DistributedMachine::new(2, 1, Topology::Line);
        let src = m.data_qubit(0, 0);
        let dst = m.data_qubit(1, 0);
        m.teleport(src, dst);
        let circ = m.circuit().clone();

        let initial = StateVector::product_state(circ.num_qubits(), &[(amps.clone(), vec![src])]);
        let out = run_shot(&circ, &initial, &mut rng);
        // Reorder: want the state on qubit `dst` = 1; trace out the rest.
        let rho = out.state.to_density();
        let n = circ.num_qubits();
        // dst = qubit 1 ⇒ keep block after qubit 0: easiest is to compare
        // ⟨ψ|ρ_dst|ψ⟩ via restriction helper below.
        let want = StateVector::product_state(1, &[(amps, vec![0])]);
        // Trace out qubit 0 (A of dim 2), keep rest, then keep first of rest.
        let rest = rho.partial_trace(2, 1 << (n - 1), TraceKeep::B);
        let dst_rho = rest.partial_trace(2, 1 << (n - 2), TraceKeep::A);
        let fid: f64 = dst_rho
            .mul_vec(want.amplitudes())
            .iter()
            .zip(want.amplitudes())
            .map(|(a, b)| (b.conj() * *a).re)
            .sum();
        assert!((fid - 1.0).abs() < 1e-10, "fidelity {fid}");
        assert_eq!(m.ledger().teleop_count(TeleopKind::Teledata), 1);
    }

    #[test]
    fn machine_remote_cx_matches_local_cx() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let ctl = qsim::qrand::random_pure_state(1, &mut rng);
            let tgt = qsim::qrand::random_pure_state(1, &mut rng);
            let mut m = DistributedMachine::new(2, 1, Topology::Line);
            let (c_q, t_q) = (m.data_qubit(0, 0), m.data_qubit(1, 0));
            m.remote_cx(c_q, t_q);
            let circ = m.circuit().clone();

            let initial = StateVector::product_state(
                circ.num_qubits(),
                &[(ctl.clone(), vec![c_q]), (tgt.clone(), vec![t_q])],
            );
            let out = run_shot(&circ, &initial, &mut rng);

            let mut want =
                StateVector::product_state(2, &[(ctl.clone(), vec![0]), (tgt.clone(), vec![1])]);
            want.apply_gate(&Gate::Cx {
                control: 0,
                target: 1,
            });
            let fid = reduced_fidelity(&out.state, 2, &want);
            assert!((fid - 1.0).abs() < 1e-10, "fidelity {fid}");
        }
    }

    #[test]
    fn machine_remote_ccx_matches_local_toffoli() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let a = qsim::qrand::random_pure_state(1, &mut rng);
            let b = qsim::qrand::random_pure_state(1, &mut rng);
            let t = qsim::qrand::random_pure_state(1, &mut rng);
            let mut m = DistributedMachine::new(2, 2, Topology::Line);
            let (qa, qb) = (m.data_qubit(0, 0), m.data_qubit(0, 1));
            let qt = m.data_qubit(1, 0);
            m.remote_ccx(qa, qb, qt);
            let circ = m.circuit().clone();

            let initial = StateVector::product_state(
                circ.num_qubits(),
                &[
                    (a.clone(), vec![qa]),
                    (b.clone(), vec![qb]),
                    (t.clone(), vec![qt]),
                ],
            );
            let out = run_shot(&circ, &initial, &mut rng);

            // Expected on (qa, qb, qt) = global qubits (0, 1, 2).
            let mut want = StateVector::product_state(
                3,
                &[
                    (a.clone(), vec![0]),
                    (b.clone(), vec![1]),
                    (t.clone(), vec![2]),
                ],
            );
            want.apply_gate(&Gate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            });
            let fid = reduced_fidelity(&out.state, 3, &want);
            assert!((fid - 1.0).abs() < 1e-10, "fidelity {fid}");
        }
    }

    #[test]
    fn cat_copy_roundtrip_preserves_source() {
        let mut rng = StdRng::seed_from_u64(7);
        let amps = qsim::qrand::random_pure_state(1, &mut rng);
        let mut m = DistributedMachine::new(2, 1, Topology::Line);
        let src = m.data_qubit(0, 0);
        let copy = m.cat_copy(src, 1);
        m.cat_uncopy(copy, src);
        let circ = m.circuit().clone();
        let initial = StateVector::product_state(circ.num_qubits(), &[(amps.clone(), vec![src])]);
        let out = run_shot(&circ, &initial, &mut rng);
        let want = StateVector::product_state(1, &[(amps, vec![0])]);
        let fid = reduced_fidelity(&out.state, 1, &want);
        assert!((fid - 1.0).abs() < 1e-10, "fidelity {fid}");
    }

    #[test]
    fn bell_error_inserts_noise_sites() {
        let mut m = DistributedMachine::new(2, 1, Topology::Line).with_bell_error(0.01);
        m.create_bell(0, 1);
        let noisy_sites = m
            .circuit()
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instruction::Depolarizing { .. }))
            .count();
        assert_eq!(noisy_sites, 1);
    }

    #[test]
    fn heterogeneous_link_noise_applies_per_link() {
        let mut m = DistributedMachine::new(3, 1, Topology::Line).with_bell_error(0.01);
        m.set_link_error(1, 2, 0.2);
        assert_eq!(m.link_error(0, 1), 0.01);
        assert_eq!(m.link_error(2, 1), 0.2); // undirected
                                             // A pair spanning both links picks up one site per link at the
                                             // link's own strength.
        m.create_bell(0, 2);
        let strengths: Vec<f64> = m
            .circuit()
            .instructions()
            .iter()
            .filter_map(|i| match i {
                Instruction::Depolarizing { p, .. } => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(strengths.len(), 2);
        assert!((strengths[0] - 0.75 * 0.01).abs() < 1e-12);
        assert!((strengths[1] - 0.75 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn remote_ops_consume_expected_bell_pairs() {
        let mut m = DistributedMachine::new(2, 2, Topology::Line);
        m.remote_cx(m.data_qubit(0, 0), m.data_qubit(1, 0));
        m.remote_ccx(m.data_qubit(0, 0), m.data_qubit(0, 1), m.data_qubit(1, 0));
        assert_eq!(m.ledger().bell_pairs(), 2);
    }
}
