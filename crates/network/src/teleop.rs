//! Circuit builders for the teleoperation primitives of Fig. 1.
//!
//! These are pure functions that append the standard gate-teleportation
//! sub-circuits to a [`Circuit`] at caller-chosen qubit/classical-bit
//! indices. They make no assumptions about node layout — the
//! [`crate::machine::DistributedMachine`] layers locality, Bell-pair
//! allocation, and resource accounting on top.
//!
//! All builders follow the paper's conventions:
//!
//! * **teledata** (Fig 1a): teleports a state through a Bell pair with two
//!   Z measurements and X/Z corrections;
//! * **telegate** (Fig 1b): a remote CNOT from one Bell pair, decomposed
//!   here as a *cat-copy* of the control, a local CNOT, and a *cat-uncopy*
//!   (the same decomposition extends to the teleported Toffoli of Fig 6d,
//!   where one cat copy serves many shared-control gates).

use circuit::circuit::{Cbit, Circuit};
use circuit::gate::Qubit;

/// Appends Bell-pair preparation `|Φ+⟩ = (|00⟩+|11⟩)/√2` on `(a, b)`.
///
/// Both qubits must currently be `|0⟩`.
pub fn prepare_bell(circ: &mut Circuit, a: Qubit, b: Qubit) {
    circ.h(a).cx(a, b);
}

/// Appends state teleportation of `src` onto `dst` through the Bell pair
/// `(ebit_src, dst)`; `ebit_src` is the Bell half co-located with `src`.
///
/// Consumes the Bell pair; `src` and `ebit_src` end in measured states
/// (the caller may reset and reuse them). Outcomes are recorded in
/// `c_z` (the H-side measurement, driving the Z correction) and `c_x`
/// (the parity measurement, driving the X correction).
pub fn teledata(circ: &mut Circuit, src: Qubit, ebit_src: Qubit, dst: Qubit, c_z: Cbit, c_x: Cbit) {
    circ.cx(src, ebit_src);
    circ.h(src);
    circ.measure(src, c_z);
    circ.measure(ebit_src, c_x);
    circ.cond_x(dst, &[c_x]);
    circ.cond_z(dst, &[c_z]);
}

/// Appends a *cat copy* of `src` onto the Bell half `ebit_dst`, consuming
/// the Bell pair `(ebit_src, ebit_dst)` and recording the fused parity in
/// `c`.
///
/// After this, `ebit_dst` carries the computational-basis information of
/// `src` (they form a two-qubit cat state), so `ebit_dst` can stand in as
/// a *control* for any number of gates on its node. It must later be
/// released with [`cat_uncopy`] to restore `src` exactly.
pub fn cat_copy(circ: &mut Circuit, src: Qubit, ebit_src: Qubit, ebit_dst: Qubit, c: Cbit) {
    circ.cx(src, ebit_src);
    circ.measure(ebit_src, c);
    circ.cond_x(ebit_dst, &[c]);
}

/// Releases a cat copy created by [`cat_copy`]: measures `copy` in the X
/// basis into `c` and applies the conditional Z back-action on `src`.
pub fn cat_uncopy(circ: &mut Circuit, copy: Qubit, src: Qubit, c: Cbit) {
    circ.measure_x(copy, c);
    circ.cond_z(src, &[c]);
}

/// Appends a remote CNOT (telegate, Fig 1b) with `control` on one node and
/// `target` on another, through the Bell pair `(ebit_ctl, ebit_tgt)`.
///
/// `ebit_ctl` is co-located with `control`; `ebit_tgt` with `target`.
/// Uses two classical bits. `ebit_ctl` and `ebit_tgt` end measured.
pub fn telegate_cx(
    circ: &mut Circuit,
    control: Qubit,
    target: Qubit,
    ebit_ctl: Qubit,
    ebit_tgt: Qubit,
    c_copy: Cbit,
    c_release: Cbit,
) {
    cat_copy(circ, control, ebit_ctl, ebit_tgt, c_copy);
    circ.cx(ebit_tgt, target);
    cat_uncopy(circ, ebit_tgt, control, c_release);
}

/// Appends a remote Toffoli (Fig 6d) with controls `control_a`,
/// `control_b` on one node and `target` on another, through one Bell pair.
///
/// Uses the CCZ symmetry: the target side is H-conjugated and cat-copied
/// *to the control node*, where a local Toffoli `CCX(a, b → copy)`
/// (H-conjugated into a CCZ) acts; the copy is then released. Because the
/// local Toffoli sits on the control node, `n` such teleported Toffolis
/// sharing `control_a` leave `n` co-located shared-control Toffolis that
/// the Fanout method (§3.5) parallelises.
#[allow(clippy::too_many_arguments)] // one Bell pair + two cbits is the primitive's natural arity
pub fn telegate_ccx(
    circ: &mut Circuit,
    control_a: Qubit,
    control_b: Qubit,
    target: Qubit,
    ebit_tgt: Qubit,
    ebit_ctl: Qubit,
    c_copy: Cbit,
    c_release: Cbit,
) {
    // CCX(a,b → t) = H(t) · CCZ(a,b,t) · H(t); CCZ is symmetric, so view t
    // as the control that is cat-copied to the (a, b) node.
    circ.h(target);
    cat_copy(circ, target, ebit_tgt, ebit_ctl, c_copy);
    // Local CCZ(a, b, copy) realised as H(copy)·CCX(a,b→copy)·H(copy).
    circ.h(ebit_ctl);
    circ.ccx(control_a, control_b, ebit_ctl);
    circ.h(ebit_ctl);
    cat_uncopy(circ, ebit_ctl, target, c_release);
    circ.h(target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::gate::Gate;
    use mathkit::complex::Complex;
    use qsim::runner::run_shot;
    use qsim::statevector::StateVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random single-qubit amplitudes.
    fn random_qubit(rng: &mut impl Rng) -> Vec<Complex> {
        let amps = qsim::qrand::random_pure_state(1, rng);
        amps.to_vec()
    }

    #[test]
    fn teledata_moves_arbitrary_state() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let amps = random_qubit(&mut rng);
            // Register: 0 = src, 1 = ebit_src, 2 = dst.
            let mut c = Circuit::new(3, 2);
            prepare_bell(&mut c, 1, 2);
            teledata(&mut c, 0, 1, 2, 0, 1);
            let initial = StateVector::product_state(3, &[(amps.clone(), vec![0])]);
            let out = run_shot(&c, &initial, &mut rng);
            // dst (qubit 2) must hold the original state; qubits 0, 1 are
            // in measured basis states, so the overlap factorises.
            let want = StateVector::product_state(1, &[(amps, vec![0])]);
            let got_density = out.state.to_density();
            let reduced = got_density.partial_trace(4, 2, mathkit::matrix::TraceKeep::B);
            let fid = reduced
                .mul_vec(want.amplitudes())
                .iter()
                .zip(want.amplitudes())
                .map(|(a, b)| (b.conj() * *a).re)
                .sum::<f64>();
            assert!((fid - 1.0).abs() < 1e-10, "trial {trial}: fidelity {fid}");
        }
    }

    #[test]
    fn telegate_cx_equals_local_cx() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let ctl = random_qubit(&mut rng);
            let tgt = random_qubit(&mut rng);
            // Register: 0 = control, 1 = target, 2 = ebit_ctl, 3 = ebit_tgt.
            let mut c = Circuit::new(4, 2);
            prepare_bell(&mut c, 2, 3);
            telegate_cx(&mut c, 0, 1, 2, 3, 0, 1);
            let initial =
                StateVector::product_state(4, &[(ctl.clone(), vec![0]), (tgt.clone(), vec![1])]);
            let out = run_shot(&c, &initial, &mut rng);

            let mut want =
                StateVector::product_state(2, &[(ctl.clone(), vec![0]), (tgt.clone(), vec![1])]);
            want.apply_gate(&Gate::Cx {
                control: 0,
                target: 1,
            });
            let got = out.state.to_density();
            let reduced = got.partial_trace(4, 4, mathkit::matrix::TraceKeep::A);
            let fid = reduced
                .mul_vec(want.amplitudes())
                .iter()
                .zip(want.amplitudes())
                .map(|(a, b)| (b.conj() * *a).re)
                .sum::<f64>();
            assert!((fid - 1.0).abs() < 1e-10, "fidelity {fid}");
        }
    }

    #[test]
    fn telegate_ccx_equals_local_toffoli() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let a = random_qubit(&mut rng);
            let b = random_qubit(&mut rng);
            let t = random_qubit(&mut rng);
            // Register: 0 = control_a, 1 = control_b, 2 = target,
            //           3 = ebit_tgt, 4 = ebit_ctl.
            let mut c = Circuit::new(5, 2);
            prepare_bell(&mut c, 3, 4);
            telegate_ccx(&mut c, 0, 1, 2, 3, 4, 0, 1);
            let initial = StateVector::product_state(
                5,
                &[
                    (a.clone(), vec![0]),
                    (b.clone(), vec![1]),
                    (t.clone(), vec![2]),
                ],
            );
            let out = run_shot(&c, &initial, &mut rng);

            let mut want = StateVector::product_state(
                3,
                &[
                    (a.clone(), vec![0]),
                    (b.clone(), vec![1]),
                    (t.clone(), vec![2]),
                ],
            );
            want.apply_gate(&Gate::Ccx {
                control_a: 0,
                control_b: 1,
                target: 2,
            });
            let got = out.state.to_density();
            let reduced = got.partial_trace(8, 4, mathkit::matrix::TraceKeep::A);
            let fid = reduced
                .mul_vec(want.amplitudes())
                .iter()
                .zip(want.amplitudes())
                .map(|(x, y)| (y.conj() * *x).re)
                .sum::<f64>();
            assert!((fid - 1.0).abs() < 1e-10, "fidelity {fid}");
        }
    }

    #[test]
    fn cat_copy_tracks_control_value() {
        // For |0⟩ and |1⟩ controls, the cat copy must read the same value.
        let mut rng = StdRng::seed_from_u64(1);
        for bit in [false, true] {
            let mut c = Circuit::new(3, 2);
            if bit {
                c.x(0);
            }
            prepare_bell(&mut c, 1, 2);
            cat_copy(&mut c, 0, 1, 2, 0);
            c.measure(2, 1);
            let out = run_shot(&c, &StateVector::new(3), &mut rng);
            assert_eq!(out.cbits[1], bit);
        }
    }

    #[test]
    fn cat_copy_then_uncopy_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let amps = random_qubit(&mut rng);
            let mut c = Circuit::new(3, 2);
            prepare_bell(&mut c, 1, 2);
            cat_copy(&mut c, 0, 1, 2, 0);
            cat_uncopy(&mut c, 2, 0, 1);
            let initial = StateVector::product_state(3, &[(amps.clone(), vec![0])]);
            let out = run_shot(&c, &initial, &mut rng);
            let want = StateVector::product_state(1, &[(amps, vec![0])]);
            let got = out.state.to_density();
            let reduced = got.partial_trace(2, 4, mathkit::matrix::TraceKeep::A);
            let fid = reduced
                .mul_vec(want.amplitudes())
                .iter()
                .zip(want.amplitudes())
                .map(|(x, y)| (y.conj() * *x).re)
                .sum::<f64>();
            assert!((fid - 1.0).abs() < 1e-10);
        }
    }
}
