//! Inter-QPU connectivity graphs.
//!
//! The paper assumes a **line** of QPUs for its worst-case analysis (§2.5,
//! Fig 3c) and notes that COMPAS itself only ever talks to adjacent
//! neighbours in the interleaved ordering, so a line suffices (§3.2). Other
//! standard topologies are provided for the network-level experiments and
//! for ablations on entanglement-swapping cost.

use std::fmt;

/// Identifier of a QPU node in the network.
pub type NodeId = usize;

/// Connectivity between `k` QPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Nodes `0 — 1 — … — k−1` in a chain.
    Line,
    /// A chain closed into a cycle.
    Ring,
    /// Node 0 is a hub connected to every other node.
    Star,
    /// Every pair of nodes is directly connected.
    Full,
}

impl Topology {
    /// Whether `a` and `b` share a direct link in a `k`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    pub fn are_adjacent(self, a: NodeId, b: NodeId, k: usize) -> bool {
        assert!(a < k && b < k, "node out of range");
        assert_ne!(a, b, "adjacency of a node with itself is undefined");
        match self {
            Topology::Line => a.abs_diff(b) == 1,
            Topology::Ring => {
                let d = a.abs_diff(b);
                d == 1 || d == k - 1
            }
            Topology::Star => a == 0 || b == 0,
            Topology::Full => true,
        }
    }

    /// Hop distance between `a` and `b` in a `k`-node network.
    ///
    /// This is the number of nearest-neighbour Bell pairs that must be
    /// stitched by entanglement swapping to form one long-range pair
    /// (§2.5: "this requires `d` Bell pairs").
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(self, a: NodeId, b: NodeId, k: usize) -> usize {
        assert!(a < k && b < k, "node out of range");
        if a == b {
            return 0;
        }
        match self {
            Topology::Line => a.abs_diff(b),
            Topology::Ring => {
                let d = a.abs_diff(b);
                d.min(k - d)
            }
            Topology::Star => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
            Topology::Full => 1,
        }
    }

    /// The nodes along a shortest path from `a` to `b`, inclusive.
    pub fn path(self, a: NodeId, b: NodeId, k: usize) -> Vec<NodeId> {
        assert!(a < k && b < k, "node out of range");
        if a == b {
            return vec![a];
        }
        match self {
            Topology::Line => {
                if a < b {
                    (a..=b).collect()
                } else {
                    (b..=a).rev().collect()
                }
            }
            Topology::Ring => {
                let fwd = (b + k - a) % k;
                let bwd = (a + k - b) % k;
                if fwd <= bwd {
                    (0..=fwd).map(|i| (a + i) % k).collect()
                } else {
                    (0..=bwd).map(|i| (a + k - i) % k).collect()
                }
            }
            Topology::Star => {
                if a == 0 || b == 0 {
                    vec![a, b]
                } else {
                    vec![a, 0, b]
                }
            }
            Topology::Full => vec![a, b],
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Topology::Line => "line",
            Topology::Ring => "ring",
            Topology::Star => "star",
            Topology::Full => "full",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        assert_eq!(Topology::Line.distance(0, 4, 5), 4);
        assert_eq!(Topology::Line.distance(3, 1, 5), 2);
        assert!(Topology::Line.are_adjacent(2, 3, 5));
        assert!(!Topology::Line.are_adjacent(0, 2, 5));
    }

    #[test]
    fn ring_wraps_around() {
        assert_eq!(Topology::Ring.distance(0, 5, 6), 1);
        assert_eq!(Topology::Ring.distance(0, 3, 6), 3);
        assert!(Topology::Ring.are_adjacent(0, 5, 6));
    }

    #[test]
    fn star_routes_through_hub() {
        assert_eq!(Topology::Star.distance(1, 2, 5), 2);
        assert_eq!(Topology::Star.distance(0, 4, 5), 1);
        assert_eq!(Topology::Star.path(1, 2, 5), vec![1, 0, 2]);
    }

    #[test]
    fn full_is_always_adjacent() {
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(Topology::Full.are_adjacent(a, b, 4));
                    assert_eq!(Topology::Full.distance(a, b, 4), 1);
                }
            }
        }
    }

    #[test]
    fn paths_have_distance_plus_one_nodes() {
        for topo in [
            Topology::Line,
            Topology::Ring,
            Topology::Star,
            Topology::Full,
        ] {
            for a in 0..6 {
                for b in 0..6 {
                    if a == b {
                        continue;
                    }
                    let d = topo.distance(a, b, 6);
                    let p = topo.path(a, b, 6);
                    assert_eq!(p.len(), d + 1, "{topo} {a}->{b}");
                    assert_eq!(p[0], a);
                    assert_eq!(*p.last().unwrap(), b);
                    for w in p.windows(2) {
                        assert!(topo.are_adjacent(w[0], w[1], 6));
                    }
                }
            }
        }
    }

    #[test]
    fn ring_path_takes_short_way() {
        assert_eq!(Topology::Ring.path(5, 0, 6), vec![5, 0]);
    }
}
