//! Resource accounting for distributed protocols.
//!
//! Every teleoperation in the paper consumes pre-shared Bell pairs and
//! classical communication (§2.2). The [`ResourceLedger`] records what a
//! protocol actually used so that the measured costs can be compared
//! against the closed-form per-QPU budgets of Tables 1–3.

use std::collections::HashMap;
use std::fmt;

use crate::topology::NodeId;

/// The kind of a teleoperation, for per-kind accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TeleopKind {
    /// State teleportation (teledata, Fig 1a).
    Teledata,
    /// Remote CNOT via gate teleportation (telegate, Fig 1b).
    TelegateCnot,
    /// Remote Toffoli via cat-copy gate teleportation (Fig 6d).
    TelegateToffoli,
    /// Entanglement swapping used to stitch a long-range Bell pair.
    EntanglementSwap,
}

impl fmt::Display for TeleopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TeleopKind::Teledata => "teledata",
            TeleopKind::TelegateCnot => "telegate-cnot",
            TeleopKind::TelegateToffoli => "telegate-toffoli",
            TeleopKind::EntanglementSwap => "entanglement-swap",
        };
        write!(f, "{name}")
    }
}

/// Mutable record of the network resources a protocol consumed.
#[derive(Debug, Clone, Default)]
pub struct ResourceLedger {
    end_to_end_bell_pairs: usize,
    raw_bell_pairs: usize,
    classical_bits: usize,
    teleops: HashMap<TeleopKind, usize>,
    per_node_bell_pairs: HashMap<NodeId, usize>,
}

impl ResourceLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one end-to-end Bell pair between `a` and `b` that required
    /// `raw` nearest-neighbour pairs (`raw > 1` means entanglement
    /// swapping was used).
    pub fn record_bell_pair(&mut self, a: NodeId, b: NodeId, raw: usize) {
        self.end_to_end_bell_pairs += 1;
        self.raw_bell_pairs += raw;
        *self.per_node_bell_pairs.entry(a).or_insert(0) += 1;
        *self.per_node_bell_pairs.entry(b).or_insert(0) += 1;
        if raw > 1 {
            *self
                .teleops
                .entry(TeleopKind::EntanglementSwap)
                .or_insert(0) += raw - 1;
        }
    }

    /// Records a teleoperation of the given kind.
    pub fn record_teleop(&mut self, kind: TeleopKind) {
        *self.teleops.entry(kind).or_insert(0) += 1;
    }

    /// Records `count` teleoperations of the given kind.
    pub fn record_teleop_times(&mut self, kind: TeleopKind, count: usize) {
        *self.teleops.entry(kind).or_insert(0) += count;
    }

    /// Records `bits` classical bits sent between nodes.
    pub fn record_classical_bits(&mut self, bits: usize) {
        self.classical_bits += bits;
    }

    /// End-to-end Bell pairs consumed (after any swapping).
    pub fn bell_pairs(&self) -> usize {
        self.end_to_end_bell_pairs
    }

    /// Raw nearest-neighbour Bell pairs consumed, counting the pairs
    /// burned by entanglement swapping.
    pub fn raw_bell_pairs(&self) -> usize {
        self.raw_bell_pairs
    }

    /// Classical bits transmitted.
    pub fn classical_bits(&self) -> usize {
        self.classical_bits
    }

    /// Number of teleoperations of `kind`.
    pub fn teleop_count(&self, kind: TeleopKind) -> usize {
        self.teleops.get(&kind).copied().unwrap_or(0)
    }

    /// Bell-pair endpoints touching `node` (the per-QPU load of Tables
    /// 1–2 counts each pair once per endpoint).
    pub fn bell_pairs_at(&self, node: NodeId) -> usize {
        self.per_node_bell_pairs.get(&node).copied().unwrap_or(0)
    }

    /// The maximum per-node Bell-pair load — the paper's "cost per QPU".
    pub fn max_bell_pairs_per_node(&self) -> usize {
        self.per_node_bell_pairs
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Merges another ledger into this one (per-node loads add).
    pub fn absorb(&mut self, other: &ResourceLedger) {
        self.end_to_end_bell_pairs += other.end_to_end_bell_pairs;
        self.raw_bell_pairs += other.raw_bell_pairs;
        self.classical_bits += other.classical_bits;
        for (kind, count) in &other.teleops {
            *self.teleops.entry(*kind).or_insert(0) += count;
        }
        for (node, count) in &other.per_node_bell_pairs {
            *self.per_node_bell_pairs.entry(*node).or_insert(0) += count;
        }
    }
}

impl fmt::Display for ResourceLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bell pairs: {} end-to-end ({} raw), classical bits: {}",
            self.end_to_end_bell_pairs, self.raw_bell_pairs, self.classical_bits
        )?;
        let mut kinds: Vec<_> = self.teleops.iter().collect();
        kinds.sort_by_key(|(k, _)| format!("{k}"));
        for (kind, count) in kinds {
            writeln!(f, "  {kind}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_pair_accounting() {
        let mut l = ResourceLedger::new();
        l.record_bell_pair(0, 1, 1);
        l.record_bell_pair(0, 3, 3); // swapped over 3 raw pairs
        assert_eq!(l.bell_pairs(), 2);
        assert_eq!(l.raw_bell_pairs(), 4);
        assert_eq!(l.bell_pairs_at(0), 2);
        assert_eq!(l.bell_pairs_at(1), 1);
        assert_eq!(l.teleop_count(TeleopKind::EntanglementSwap), 2);
        assert_eq!(l.max_bell_pairs_per_node(), 2);
    }

    #[test]
    fn absorb_adds_everything() {
        let mut a = ResourceLedger::new();
        a.record_bell_pair(0, 1, 1);
        a.record_classical_bits(2);
        a.record_teleop(TeleopKind::Teledata);
        let mut b = ResourceLedger::new();
        b.record_bell_pair(1, 2, 1);
        b.record_classical_bits(4);
        b.record_teleop(TeleopKind::Teledata);
        a.absorb(&b);
        assert_eq!(a.bell_pairs(), 2);
        assert_eq!(a.classical_bits(), 6);
        assert_eq!(a.teleop_count(TeleopKind::Teledata), 2);
        assert_eq!(a.bell_pairs_at(1), 2);
    }

    #[test]
    fn display_reports_counts() {
        let mut l = ResourceLedger::new();
        l.record_bell_pair(0, 1, 1);
        l.record_teleop(TeleopKind::TelegateCnot);
        let s = l.to_string();
        assert!(s.contains("bell pairs: 1"));
        assert!(s.contains("telegate-cnot: 1"));
    }
}
