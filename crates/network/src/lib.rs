//! Distributed-QPU network model.
//!
//! The substrate COMPAS compiles onto (paper §2.2, §2.5, §3): QPU nodes on
//! a connectivity [`topology::Topology`], pre-shared Bell pairs with
//! depolarizing link noise (Eq. 5), the teledata/telegate primitives of
//! Fig. 1 ([`teleop`]), entanglement swapping for long-range pairs, and a
//! [`ledger::ResourceLedger`] recording what a protocol consumed.
//!
//! The central type is [`machine::DistributedMachine`], which assembles a
//! single global [`circuit::circuit::Circuit`] from locality-checked local
//! gates and Bell-pair-consuming teleoperations:
//!
//! ```
//! use network::prelude::*;
//!
//! let mut m = DistributedMachine::new(2, 1, Topology::Line);
//! let (control, target) = (m.data_qubit(0, 0), m.data_qubit(1, 0));
//! m.remote_cx(control, target); // CNOT across nodes via one Bell pair
//! assert_eq!(m.ledger().bell_pairs(), 1);
//! ```

pub mod ledger;
pub mod machine;
pub mod teleop;
pub mod topology;

/// Convenient re-exports of the main types.
pub mod prelude {
    pub use crate::ledger::{ResourceLedger, TeleopKind};
    pub use crate::machine::DistributedMachine;
    pub use crate::topology::{NodeId, Topology};
}
