//! Regenerates Table 4: top-4 residual Pauli errors of the noisy
//! constant-depth Fanout gadget (paper settings: 100 000 shots per grid
//! point, p ∈ {1e-3, 3e-3, 5e-3}, targets ∈ {4, 6, 8}).
//!
//! The 9-point grid runs as one batch through the shared `Executor` —
//! deterministic for the fixed root seed at any `COMPAS_THREADS`
//! setting.

use analysis::fanout_noise::{table4, table4_result};
use bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(100_000, 5_000);
    let exec = bench::bench_executor();
    let rows = table4(&exec, &[0.001, 0.003, 0.005], &[4, 6, 8], shots);
    bench::emit(&table4_result(&rows));
}
