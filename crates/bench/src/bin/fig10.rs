//! Regenerates Fig 10: upper bound on the QPU count k as a function of
//! the Bell-pair logical error rate, for several error tolerances, with
//! the distillation-code catalogue as markers (n = 100 qubits per QPU).

use analysis::network_bounds::{fig10, fig10_result, k_upper_bound};

fn main() {
    let p_grid: Vec<f64> = (0..=50)
        .map(|i| 10f64.powf(-8.0 + 5.0 * i as f64 / 50.0))
        .collect();
    let (curves, markers) = fig10(&[1e-1, 1e-2, 1e-3, 1e-4], &p_grid, 100);
    bench::emit(&fig10_result(&curves, &markers));
    for (code, rate) in &markers {
        println!(
            "{code}: logical rate {rate:.3e} -> k ≤ {:.1} at ε = 1e-3",
            k_upper_bound(1e-3, 100, *rate)
        );
    }
}
