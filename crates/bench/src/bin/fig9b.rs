//! Regenerates Fig 9b: classical fidelity of the two-party CSWAP vs
//! state width, for the teledata and telegate schemes.
//!
//! Primitive characterisation runs per grid point under derived child
//! contexts, and all fidelity evaluations execute as one batch through
//! the shared `Executor` — deterministic for the fixed root seed at any
//! `COMPAS_THREADS` setting.

use analysis::cswap_fidelity::{fig9b, fig9b_result};
use bench::Scale;
use compas::cswap::CswapScheme;

fn main() {
    let scale = Scale::from_env();
    let characterize_shots = scale.pick(50_000, 3_000);
    let shots_per_input = scale.pick(200, 20);
    let exec = bench::bench_executor();
    let widths: Vec<usize> = (1..=5).collect();
    let series = fig9b(
        &exec,
        &widths,
        &[0.001, 0.003, 0.005],
        characterize_shots,
        shots_per_input,
    );
    bench::emit(&fig9b_result(&series));

    // The paper's headline comparison: telegate trails teledata by a
    // fraction of a percent on average.
    let avg = |scheme: CswapScheme| {
        let (sum, count) = series
            .iter()
            .filter(|s| s.scheme == scheme)
            .flat_map(|s| s.points.iter())
            .fold((0.0, 0usize), |(s, c), &(_, f)| (s + f, c + 1));
        sum / count as f64
    };
    let td = avg(CswapScheme::Teledata);
    let tg = avg(CswapScheme::Telegate);
    println!(
        "mean classical fidelity: teledata {td:.4}, telegate {tg:.4} (Δ = {:.2}%)",
        100.0 * (td - tg)
    );
}
