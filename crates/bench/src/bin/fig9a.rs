//! Regenerates Fig 9a: distributed GHZ fidelity vs party count with
//! linear fits, r ∈ 4..=12, p2q ∈ {1e-3, 3e-3, 5e-3}.
//!
//! The full 27-point grid runs as one batch through the shared
//! `Executor` — deterministic for the fixed root seed at any
//! `COMPAS_THREADS` setting.

use analysis::ghz_fidelity::{fig9a, fig9a_result};
use bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(100_000, 4_000);
    let exec = bench::bench_executor();
    let parties: Vec<usize> = (4..=12).collect();
    let series = fig9a(&exec, &parties, &[0.001, 0.003, 0.005], shots);
    bench::emit(&fig9a_result(&series));
    for s in &series {
        println!(
            "p2q={}: fidelity ≈ {:.4} + {:.4}·r (R² = {:.3})",
            s.p, s.fit.intercept, s.fit.slope, s.fit.r_squared
        );
    }
}
