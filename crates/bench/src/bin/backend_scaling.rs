//! Criterion-free micro-benchmark of the pluggable simulation backends:
//! prints shots/sec for `Backend::StateVector`, `Backend::Stabilizer`,
//! and `Backend::Auto` on a Clifford GHZ workload (the paper's §5.3
//! shape: GHZ chain + depolarizing noise + full measurement), and
//! asserts that
//!
//! * `Auto` routes the Clifford circuit to the stabilizer path,
//! * all backends tally the *same records* for one root seed (the
//!   stabilizer backend consumes the shot streams in the statevector's
//!   per-instruction pattern), and
//! * the stabilizer path is measurably faster than the statevector path
//!   on this workload — the speedup `Auto` buys for free.
//!
//! Run with: `cargo run --release --bin backend_scaling [--quick]`
//!
//! Shots run under `Executor::Sequential` deliberately: the bin
//! compares *representations* at a fixed execution mode, so the rate
//! ratio is a clean per-backend number on any machine (thread-count
//! scaling is `engine_scaling`'s job).

use analysis::table_io::ResultTable;
use bench::Scale;
use circuit::circuit::Circuit;
use circuit::noise::NoiseModel;
use engine::{Backend, Counts, Executor};
use std::time::Instant;

/// The noisy GHZ workload: prepare an `r`-qubit GHZ chain under
/// standard depolarizing noise and measure every qubit.
fn ghz_workload(r: usize, p: f64) -> Circuit {
    let mut prep = Circuit::new(r, r);
    prep.h(0);
    for q in 1..r {
        prep.cx(q - 1, q);
    }
    let mut noisy = NoiseModel::standard(p).apply(&prep);
    for q in 0..r {
        noisy.measure(q, q);
    }
    noisy
}

fn time_backend(backend: Backend, circuit: &Circuit, shots: usize, exec: &Executor) -> (f64, Counts) {
    let t0 = Instant::now();
    let counts = backend
        .sample_shots(circuit, shots, exec)
        .unwrap_or_else(|e| panic!("{e}"));
    (t0.elapsed().as_secs_f64(), counts)
}

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(100_000, 10_000);
    let (r, p) = (12usize, 0.002);
    let circuit = ghz_workload(r, p);
    let exec = Executor::sequential(bench::ROOT_SEED);

    // Auto must pick the stabilizer fast path on a Clifford circuit.
    assert_eq!(
        Backend::Auto.resolve(&circuit),
        Backend::Stabilizer,
        "Auto failed to route the Clifford GHZ workload to the stabilizer"
    );

    let mut t = ResultTable::new(
        "Backend scaling on the GHZ workload (r = 12, p = 2e-3)",
        &["backend", "resolved", "shots", "secs", "shots_per_sec", "vs_statevector"],
    );

    let (sv_secs, sv_counts) = time_backend(Backend::StateVector, &circuit, shots, &exec);
    let sv_rate = shots as f64 / sv_secs;
    let mut rates = Vec::new();
    for backend in [Backend::StateVector, Backend::Stabilizer, Backend::Auto] {
        let (secs, counts) = if backend == Backend::StateVector {
            (sv_secs, sv_counts.clone())
        } else {
            time_backend(backend, &circuit, shots, &exec)
        };
        assert_eq!(counts.values().sum::<usize>(), shots);
        assert_eq!(
            counts, sv_counts,
            "{backend}: records diverged from the statevector reference"
        );
        let rate = shots as f64 / secs;
        rates.push((backend, rate));
        t.push_row(vec![
            backend.name().into(),
            backend.resolve(&circuit).name().into(),
            shots.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / sv_rate),
        ]);
    }
    bench::emit(&t);

    let stab_rate = rates
        .iter()
        .find(|(b, _)| *b == Backend::Stabilizer)
        .map(|&(_, r)| r)
        .unwrap();
    println!(
        "stabilizer path: {:.1}x the statevector rate on the Clifford GHZ workload",
        stab_rate / sv_rate
    );
    assert!(
        stab_rate > 2.0 * sv_rate,
        "stabilizer path should be measurably faster (got {:.2}x)",
        stab_rate / sv_rate
    );
}
