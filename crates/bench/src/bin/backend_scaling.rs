//! Criterion-free micro-benchmark of the pluggable simulation backends
//! and of the compile-once shot replay: prints shots/sec on a Clifford
//! GHZ workload (the paper's §5.3 shape: GHZ chain + depolarizing noise
//! + full measurement) for
//!
//! * the **interpreted** statevector path (per-shot re-interpretation,
//!   `Executor::sample_shots_interpreted`),
//! * the **compiled** statevector path (fused kernels compiled once and
//!   replayed, `Executor::sample_shots` — the production default),
//! * `Backend::Stabilizer`, and `Backend::Auto`,
//!
//! and asserts that
//!
//! * every path tallies the *same records* for one root seed (compiled
//!   kernels keep the RNG stream in interpreted order; the stabilizer
//!   backend consumes the statevector's per-instruction pattern),
//! * `Auto` routes the Clifford circuit to the stabilizer path,
//! * the compiled statevector path is **strictly faster** than the
//!   interpreted path — the CI perf-regression guard, re-checked from
//!   the emitted JSON by the workflow's perf-guard step,
//! * the stabilizer path stays measurably faster than the statevector.
//!
//! Results are emitted as a table + CSV and as machine-readable JSON
//! under `results/bench/backend_scaling.json` (schema: README §"Circuit
//! compilation & perf tracking").
//!
//! Run with: `cargo run --release --bin backend_scaling [--quick]`
//!
//! Shots run under `Executor::Sequential` deliberately: the bin
//! compares *representations and programs* at a fixed execution mode,
//! so the rate ratio is a clean per-backend number on any machine
//! (thread-count scaling is `engine_scaling`'s job).

use analysis::table_io::ResultTable;
use bench::{BenchReport, Scale};
use circuit::circuit::Circuit;
use circuit::noise::NoiseModel;
use engine::{Backend, Counts, Executor};
use qsim::statevector::StateVector;
use std::time::Instant;

/// The noisy GHZ workload: prepare an `r`-qubit GHZ chain under
/// standard depolarizing noise and measure every qubit.
fn ghz_workload(r: usize, p: f64) -> Circuit {
    let mut prep = Circuit::new(r, r);
    prep.h(0);
    for q in 1..r {
        prep.cx(q - 1, q);
    }
    let mut noisy = NoiseModel::standard(p).apply(&prep);
    for q in 0..r {
        noisy.measure(q, q);
    }
    noisy
}

fn time_run(f: impl FnOnce() -> Counts) -> (f64, Counts) {
    let t0 = Instant::now();
    let counts = f();
    (t0.elapsed().as_secs_f64(), counts)
}

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(100_000, 10_000);
    let (r, p) = (12usize, 0.002);
    let circuit = ghz_workload(r, p);
    let exec = Executor::sequential(bench::ROOT_SEED);
    let initial = StateVector::new(r);

    // Auto must pick the stabilizer fast path on a Clifford circuit.
    assert_eq!(
        Backend::Auto.resolve(&circuit),
        Backend::Stabilizer,
        "Auto failed to route the Clifford GHZ workload to the stabilizer"
    );

    let mut t = ResultTable::new(
        "Backend scaling on the GHZ workload (r = 12, p = 2e-3)",
        &[
            "path",
            "resolved",
            "shots",
            "secs",
            "shots_per_sec",
            "vs_interpreted",
        ],
    );
    let mut report = BenchReport::new(
        "backend_scaling",
        format!("ghz-{r} depolarizing p={p}"),
        scale == Scale::Quick,
    );

    let (interp_secs, interp_counts) =
        time_run(|| exec.sample_shots_interpreted(&circuit, &initial, shots));
    let interp_rate = shots as f64 / interp_secs;

    // (label, selected backend, secs, counts) per timed path.
    let mut rows = vec![(
        "statevector-interpreted",
        Backend::StateVector,
        interp_secs,
        interp_counts.clone(),
    )];
    let (compiled_secs, compiled_counts) =
        time_run(|| exec.sample_shots(&circuit, &initial, shots));
    rows.push((
        "statevector-compiled",
        Backend::StateVector,
        compiled_secs,
        compiled_counts,
    ));
    for backend in [Backend::Stabilizer, Backend::Auto] {
        let (secs, counts) = time_run(|| backend.sample_shots(&circuit, shots, &exec).unwrap());
        let label = if backend == Backend::Auto {
            "auto"
        } else {
            "stabilizer"
        };
        rows.push((label, backend, secs, counts));
    }

    let mut rate_of = std::collections::HashMap::new();
    for (label, backend, secs, counts) in &rows {
        assert_eq!(counts.values().sum::<usize>(), shots, "{label}");
        assert_eq!(
            counts, &interp_counts,
            "{label}: records diverged from the interpreted statevector reference"
        );
        let rate = shots as f64 / secs;
        rate_of.insert(*label, rate);
        t.push_row(vec![
            (*label).into(),
            backend.resolve(&circuit).name().into(),
            shots.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / interp_rate),
        ]);
        report.push_timing(label, backend.name(), "sequential", 1, shots, *secs);
    }
    bench::emit(&t);
    bench::emit_report(&report);

    let compiled_rate = rate_of["statevector-compiled"];
    println!(
        "compiled statevector path: {:.2}x the interpreted rate on the GHZ workload",
        compiled_rate / interp_rate
    );
    assert!(
        compiled_rate > interp_rate,
        "perf regression: compiled statevector path ({compiled_rate:.0}/s) is not \
         strictly faster than the interpreted path ({interp_rate:.0}/s)"
    );

    let stab_rate = rate_of["stabilizer"];
    println!(
        "stabilizer path: {:.1}x the interpreted statevector rate on the Clifford GHZ workload",
        stab_rate / interp_rate
    );
    assert!(
        stab_rate > 2.0 * interp_rate,
        "stabilizer path should be measurably faster (got {:.2}x)",
        stab_rate / interp_rate
    );
}
