//! Criterion-free micro-benchmark of the pluggable simulation backends
//! and of the compile-once shot replay: prints shots/sec on a Clifford
//! GHZ workload (the paper's §5.3 shape: GHZ chain + depolarizing noise
//! + full measurement) for
//!
//! * the **interpreted** statevector path (per-shot re-interpretation,
//!   `Executor::sample_shots_interpreted`),
//! * the **compiled** statevector path (fused kernels compiled once and
//!   replayed, `Executor::sample_shots` — the production default),
//! * `Backend::Stabilizer`, and `Backend::Auto`,
//!
//! and asserts that
//!
//! * every path tallies the *same records* for one root seed (compiled
//!   kernels keep the RNG stream in interpreted order; the stabilizer
//!   backend consumes the statevector's per-instruction pattern),
//! * `Auto` routes the Clifford circuit to the stabilizer path,
//! * the compiled statevector path is **strictly faster** than the
//!   interpreted path — the CI perf-regression guard, re-checked from
//!   the emitted JSON by the workflow's perf-guard step,
//! * the stabilizer path stays measurably faster than the statevector.
//!
//! A second section sweeps state width on a non-Clifford ZZ workload
//! (rx mixer layers + cx/rz/cx ZZ chains — the shape the two-qubit
//! fuser collapses into single 4×4 passes) and times each width both
//! **sequentially** and **amplitude-parallel** (`sweep-{n}q-seq` /
//! `sweep-{n}q-amp` rows, with `qubits`, `bytes_per_amp_pass`,
//! `kernels_fused`, `kernels_unfused`, `host_cores`, `amp_threads`,
//! and `amp_speedup` extras). In-bin asserts: amp tallies are
//! bit-identical to sequential at every width, fusion strictly reduces
//! the kernel count, and — only on hosts with ≥ 4 cores running ≥ 4
//! amp workers — the 20+-qubit amp rows are ≥ 1.5× faster (re-checked
//! from the JSON by the CI perf guard).
//!
//! Results are emitted as a table + CSV and as machine-readable JSON
//! under `results/bench/backend_scaling.json` (schema: README §"Circuit
//! compilation & perf tracking").
//!
//! Run with: `cargo run --release --bin backend_scaling [--quick]`
//!
//! Shots run under `Executor::Sequential` deliberately: the bin
//! compares *representations and programs* at a fixed execution mode,
//! so the rate ratio is a clean per-backend number on any machine
//! (thread-count scaling is `engine_scaling`'s job; the amp sweep
//! isolates *within-shot* parallelism by pinning the shot workers
//! to 1).

use analysis::table_io::ResultTable;
use bench::{BenchReport, Scale};
use circuit::circuit::Circuit;
use circuit::noise::NoiseModel;
use engine::{Backend, Counts, Engine, EngineConfig, Executor};
use qsim::prelude::{compile, compile_with, CompileOptions};
use qsim::statevector::StateVector;
use std::time::Instant;

/// The noisy GHZ workload: prepare an `r`-qubit GHZ chain under
/// standard depolarizing noise and measure every qubit.
fn ghz_workload(r: usize, p: f64) -> Circuit {
    let mut prep = Circuit::new(r, r);
    prep.h(0);
    for q in 1..r {
        prep.cx(q - 1, q);
    }
    let mut noisy = NoiseModel::standard(p).apply(&prep);
    for q in 0..r {
        noisy.measure(q, q);
    }
    noisy
}

/// The amp-sweep workload: `layers` rounds of an rx mixer layer
/// followed by a cx/rz/cx ZZ chain (each three-gate block fuses into
/// one 4×4 kernel), then full measurement. Non-Clifford, so it always
/// runs on the statevector.
fn zz_sweep_workload(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n, n);
    for layer in 0..layers {
        for q in 0..n {
            c.rx(q, 0.3 + 0.05 * (q + layer) as f64);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.rz(q + 1, 0.4 + 0.03 * q as f64);
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

fn time_run(f: impl FnOnce() -> Counts) -> (f64, Counts) {
    let t0 = Instant::now();
    let counts = f();
    (t0.elapsed().as_secs_f64(), counts)
}

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(100_000, 10_000);
    let (r, p) = (12usize, 0.002);
    let circuit = ghz_workload(r, p);
    let exec = Executor::sequential(bench::ROOT_SEED);
    let initial = StateVector::new(r);

    // Auto must pick the stabilizer fast path on a Clifford circuit.
    assert_eq!(
        Backend::Auto.resolve(&circuit),
        Backend::Stabilizer,
        "Auto failed to route the Clifford GHZ workload to the stabilizer"
    );

    let mut t = ResultTable::new(
        "Backend scaling on the GHZ workload (r = 12, p = 2e-3)",
        &[
            "path",
            "resolved",
            "shots",
            "secs",
            "shots_per_sec",
            "vs_interpreted",
        ],
    );
    let mut report = BenchReport::new(
        "backend_scaling",
        format!("ghz-{r} depolarizing p={p}"),
        scale == Scale::Quick,
    );

    let (interp_secs, interp_counts) =
        time_run(|| exec.sample_shots_interpreted(&circuit, &initial, shots));
    let interp_rate = shots as f64 / interp_secs;

    // (label, selected backend, secs, counts) per timed path.
    let mut rows = vec![(
        "statevector-interpreted",
        Backend::StateVector,
        interp_secs,
        interp_counts.clone(),
    )];
    let (compiled_secs, compiled_counts) =
        time_run(|| exec.sample_shots(&circuit, &initial, shots));
    rows.push((
        "statevector-compiled",
        Backend::StateVector,
        compiled_secs,
        compiled_counts,
    ));
    for backend in [Backend::Stabilizer, Backend::Auto] {
        let (secs, counts) = time_run(|| backend.sample_shots(&circuit, shots, &exec).unwrap());
        let label = if backend == Backend::Auto {
            "auto"
        } else {
            "stabilizer"
        };
        rows.push((label, backend, secs, counts));
    }

    let mut rate_of = std::collections::HashMap::new();
    for (label, backend, secs, counts) in &rows {
        assert_eq!(counts.values().sum::<usize>(), shots, "{label}");
        assert_eq!(
            counts, &interp_counts,
            "{label}: records diverged from the interpreted statevector reference"
        );
        let rate = shots as f64 / secs;
        rate_of.insert(*label, rate);
        t.push_row(vec![
            (*label).into(),
            backend.resolve(&circuit).name().into(),
            shots.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / interp_rate),
        ]);
        report.push_timing(label, backend.name(), "sequential", 1, shots, *secs);
    }
    // ---- Amplitude-parallel qubit sweep -------------------------------
    //
    // One shot worker throughout: the comparison is within-shot
    // amplitude splitting vs the plain sequential replay of the same
    // per-shot RNG streams, so the tallies must match bit-for-bit.
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let amp_threads = EngineConfig::from_env().amp_threads.clamp(2, 8);
    let widths: &[usize] = scale.pick(&[12, 16, 20, 24][..], &[12, 16, 20][..]);
    let layers = 4;
    let mut sweep = ResultTable::new(
        format!("Amplitude-parallel sweep on the ZZ workload ({amp_threads} amp threads)"),
        &[
            "row",
            "qubits",
            "shots",
            "secs",
            "shots_per_sec",
            "amp_speedup",
            "bytes_per_amp_pass",
        ],
    );
    for &n in widths {
        let circuit = zz_sweep_workload(n, layers);
        let program = compile(&circuit);
        let unfused = compile_with(&circuit, CompileOptions { fuse_pairs: false });
        assert!(
            program.kernel_passes() < unfused.kernel_passes(),
            "{n}q: two-qubit fusion did not reduce kernel passes \
             ({} fused vs {} unfused)",
            program.kernel_passes(),
            unfused.kernel_passes(),
        );
        let bytes_per_pass = program.bytes_per_amp_pass(n);
        let shots = (scale.pick(16usize, 6) >> (n.saturating_sub(12) / 4)).max(2);
        let initial = StateVector::new(n);

        let seq_exec = Executor::pooled(
            Engine::new(EngineConfig::single_threaded()),
            bench::ROOT_SEED,
        );
        let (seq_secs, seq_counts) = time_run(|| seq_exec.sample_shots(&circuit, &initial, shots));
        let amp_exec = Executor::pooled(
            Engine::new(
                EngineConfig::with_threads(1)
                    .with_amp_threads(amp_threads)
                    .with_amp_threshold(0),
            ),
            bench::ROOT_SEED,
        );
        let (amp_secs, amp_counts) = time_run(|| amp_exec.sample_shots(&circuit, &initial, shots));
        assert_eq!(
            amp_counts, seq_counts,
            "{n}q: amp-parallel tallies diverged from sequential"
        );

        let speedup = seq_secs / amp_secs;
        let extras = |amp_speedup: f64| {
            vec![
                ("qubits".to_string(), n as f64),
                ("bytes_per_amp_pass".to_string(), bytes_per_pass),
                ("kernels_fused".to_string(), program.kernel_passes() as f64),
                (
                    "kernels_unfused".to_string(),
                    unfused.kernel_passes() as f64,
                ),
                ("host_cores".to_string(), host_cores as f64),
                ("amp_threads".to_string(), amp_threads as f64),
                ("amp_speedup".to_string(), amp_speedup),
            ]
        };
        for (row, secs, threads, speedup) in [
            (format!("sweep-{n}q-seq"), seq_secs, 1, 1.0),
            (format!("sweep-{n}q-amp"), amp_secs, amp_threads, speedup),
        ] {
            sweep.push_row(vec![
                row.clone(),
                n.to_string(),
                shots.to_string(),
                format!("{secs:.3}"),
                format!("{:.1}", shots as f64 / secs),
                format!("{speedup:.2}x"),
                format!("{bytes_per_pass:.0}"),
            ]);
            report.push_timing_extra(
                &row,
                "statevector",
                if threads == 1 {
                    "sequential"
                } else {
                    "amp-parallel"
                },
                threads,
                shots,
                secs,
                extras(speedup),
            );
        }
        println!(
            "sweep {n}q: {speedup:.2}x amp speedup ({amp_threads} amp threads, \
             {:.0} bytes/amplitude-pass, {} fused / {} unfused kernels)",
            bytes_per_pass,
            program.kernel_passes(),
            unfused.kernel_passes(),
        );
        // The perf claim only holds where the hardware can express it:
        // enforced on ≥4-core hosts running ≥4 amp workers, at widths
        // where per-shot fork/join overhead is amortised.
        if n >= 20 && host_cores >= 4 && amp_threads >= 4 {
            assert!(
                speedup >= 1.5,
                "{n}q: amp-parallel speedup {speedup:.2}x below the 1.5x floor \
                 ({host_cores} cores, {amp_threads} amp threads)"
            );
        }
    }
    bench::emit(&sweep);

    bench::emit(&t);
    bench::emit_report(&report);

    let compiled_rate = rate_of["statevector-compiled"];
    println!(
        "compiled statevector path: {:.2}x the interpreted rate on the GHZ workload",
        compiled_rate / interp_rate
    );
    assert!(
        compiled_rate > interp_rate,
        "perf regression: compiled statevector path ({compiled_rate:.0}/s) is not \
         strictly faster than the interpreted path ({interp_rate:.0}/s)"
    );

    let stab_rate = rate_of["stabilizer"];
    println!(
        "stabilizer path: {:.1}x the interpreted statevector rate on the Clifford GHZ workload",
        stab_rate / interp_rate
    );
    assert!(
        stab_rate > 2.0 * interp_rate,
        "stabilizer path should be measurably faster (got {:.2}x)",
        stab_rate / interp_rate
    );
}
