//! Regenerates Table 1: per-QPU cost of the telegate scheme.

use analysis::table_io::ResultTable;
use compas::resources::telegate_costs;

fn main() {
    let mut t = ResultTable::new(
        "Table 1 telegate cost per QPU",
        &["step", "ancilla", "bell_pairs", "depth"],
    );
    for n in [1usize, 2, 4, 8, 16, 100] {
        let table = telegate_costs(n);
        for s in &table.steps {
            t.push_row(vec![
                format!("n={n} {}", s.label),
                s.ancilla.to_string(),
                (s.bell_pairs * s.repeats).to_string(),
                (s.depth * s.repeats).to_string(),
            ]);
        }
        t.push_row(vec![
            format!("n={n} total"),
            table.total_ancilla.to_string(),
            table.total_bell_pairs.to_string(),
            table.total_depth.to_string(),
        ]);
    }
    bench::emit(&t);
    println!("{}", telegate_costs(4));
}
