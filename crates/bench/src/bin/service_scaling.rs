//! Serving-layer micro-benchmark: requests/sec through a live
//! `service` instance (in-process, loopback TCP), cold vs warm.
//!
//! The workload is a batch of *distinct* jobs (same noisy GHZ circuit,
//! different root seeds — so every cold request really executes) sent
//! twice over one connection:
//!
//! * **cold** — every request misses the cache and runs shots through
//!   the scheduler's sliced worker pool;
//! * **warm** — the identical batch again: every request must be a
//!   content-addressed cache hit with tallies byte-identical to its
//!   cold twin.
//!
//! Asserts, and re-checks from the emitted JSON in CI's perf guard:
//!
//! * warm requests/sec **strictly faster** than cold (a cache hit must
//!   beat a simulation),
//! * warm-pass cache hit rate is exactly 1.0 (reported as the
//!   `cache_hit_rate` extra field),
//! * cold/warm tallies identical per request, all shots accounted.
//!
//! Two evented-serving rows ride along:
//!
//! * **service-idle-256** — the warm batch again while 256 idle
//!   connections are parked on the reactor; carries a `thread_delta`
//!   extra (process threads gained while holding the sockets — the
//!   perf guard asserts it stays flat, i.e. no thread-per-connection
//!   regression) and an `idle_connections` extra;
//! * **service-restart-warm** — the server is shut down and respawned
//!   onto the same `--cache-dir` spill directory, then serves the
//!   identical batch from disk without executing a single shot. The
//!   perf guard asserts this beats the cold rate.
//!
//! Two observability rows guard the instrumentation bargain: the same
//! distinct-seed cold batch served by an uninstrumented and a fully
//! instrumented (`obs::Registry`) server — rows **service-obs-off** /
//! **service-obs-on**. The response lines must be byte-identical
//! (instrumentation never changes served bytes) and CI's perf guard
//! asserts the instrumented rate stays within 5% of the bare one.
//!
//! A third section benches the **sharded topology**: the same batch
//! (explicit statevector backend, heavier shots) served through a
//! `shard` coordinator over 1, 2, and 4 loopback workers — rows
//! `sharded-N` carry requests/sec plus a `redispatched` extra (ranges
//! re-dispatched after worker failure; 0 on a healthy run), and the
//! response lines must be byte-identical across topologies. CI's perf
//! guard asserts sharded-4 is no slower than sharded-1.
//!
//! Results: `results/bench/service_scaling.json`
//! (`BenchReport` schema + `cache_hit_rate`).
//!
//! Run with: `cargo run --release --bin service_scaling [--quick]`

use analysis::table_io::ResultTable;
use bench::{BenchReport, Scale};
use circuit::circuit::Circuit;
use circuit::noise::NoiseModel;
use circuit::qasm::to_qasm3;
use service::{Request, Response, RunRequest, Service, ServiceConfig, ServiceHandle};
use shard::{Coordinator, CoordinatorConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// The served workload: an `r`-qubit GHZ chain under standard
/// depolarizing noise, all qubits measured (the `backend_scaling`
/// shape, shipped as QASM).
fn ghz_workload(r: usize, p: f64) -> Circuit {
    let mut prep = Circuit::new(r, r);
    prep.h(0);
    for q in 1..r {
        prep.cx(q - 1, q);
    }
    let mut noisy = NoiseModel::standard(p).apply(&prep);
    for q in 0..r {
        noisy.measure(q, q);
    }
    noisy
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to in-process service");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn round_trip(&mut self, request: &Request) -> Response {
        self.writer
            .write_all(request.to_line().as_bytes())
            .expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).expect("recv") > 0);
        Response::from_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"))
    }
}

/// Sends the whole batch, asserting every response is `ok`, and
/// returns (wall seconds, per-request tallies as response lines).
fn run_pass(
    client: &mut Client,
    qasm: &str,
    shots: u64,
    seeds: std::ops::Range<u64>,
    expect_cached: bool,
) -> (f64, Vec<String>) {
    let t0 = Instant::now();
    let mut lines = Vec::new();
    for seed in seeds {
        let response = client.round_trip(&Request::run(
            None,
            RunRequest::new(qasm.to_string(), shots, seed, "auto"),
        ));
        match &response {
            Response::Ok {
                cached, tallies, ..
            } => {
                assert_eq!(
                    *cached, expect_cached,
                    "seed {seed}: expected cached={expect_cached}"
                );
                assert_eq!(
                    tallies.values().sum::<usize>(),
                    shots as usize,
                    "seed {seed}: shots unaccounted"
                );
            }
            other => panic!("seed {seed}: unexpected response {other:?}"),
        }
        lines.push(response.to_line());
    }
    (t0.elapsed().as_secs_f64(), lines)
}

/// The process's live thread count (`/proc/self/status`); `None` off
/// Linux — the `thread_delta` extra then reports 0.
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

fn main() {
    let scale = Scale::from_env();
    let requests = scale.pick(100u64, 25u64);
    let shots = scale.pick(20_000u64, 2_000u64);
    let (r, p) = (12usize, 0.002);
    let workers = 2usize;
    let idle_conns = 256usize;
    let qasm = to_qasm3(&ghz_workload(r, p));
    let cache_dir = std::env::temp_dir().join(format!("compas-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let config = ServiceConfig {
        workers,
        cache_capacity: requests as usize + 8,
        cache_dir: Some(cache_dir.clone()),
        slice_shots: 4096,
        max_connections: idle_conns + 16,
        ..ServiceConfig::default()
    };
    let handle = Service::spawn(config.clone()).expect("spawn service");
    let mut client = Client::connect(handle.addr());

    let (cold_secs, cold_lines) = run_pass(&mut client, &qasm, shots, 0..requests, false);
    let hits_before_warm = handle.stats().cache_hits;
    let (warm_secs, warm_lines) = run_pass(&mut client, &qasm, shots, 0..requests, true);
    let stats = handle.stats();

    // ---- idle soak: the warm batch under 256 parked connections ----
    let threads_before = thread_count();
    let idlers: Vec<TcpStream> = (0..idle_conns)
        .map(|_| TcpStream::connect(handle.addr()).expect("idle connect"))
        .collect();
    while handle.gauges().open < idle_conns as u64 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let (idle_secs, _) = run_pass(&mut client, &qasm, shots, 0..requests, true);
    let thread_delta = match (threads_before, thread_count()) {
        (Some(before), Some(after)) => after.saturating_sub(before),
        _ => 0,
    };
    drop(idlers);

    // ---- restart: a fresh process-equivalent serves warm from disk ----
    handle.shutdown();
    let restarted = Service::spawn(config).expect("respawn service");
    let mut client = Client::connect(restarted.addr());
    let (restart_secs, restart_lines) = run_pass(&mut client, &qasm, shots, 0..requests, true);
    assert_eq!(
        restarted.stats().completed,
        0,
        "the restarted server executed shots instead of serving from disk"
    );
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Warm responses must be byte-identical to their cold twins
    // (modulo the `cached` flag, which is part of the line — so
    // compare the tallies objects instead).
    for (seed, (cold, warm)) in cold_lines.iter().zip(&warm_lines).enumerate() {
        let tail = |line: &str| {
            line.split_once("\"tallies\"")
                .map(|(_, t)| t.to_string())
                .expect("tallies field present")
        };
        assert_eq!(
            tail(cold),
            tail(warm),
            "seed {seed}: warm tallies diverged from cold"
        );
    }
    for (seed, (cold, restart)) in cold_lines.iter().zip(&restart_lines).enumerate() {
        let tail = |line: &str| {
            line.split_once("\"tallies\"")
                .map(|(_, t)| t.to_string())
                .expect("tallies field present")
        };
        assert_eq!(
            tail(cold),
            tail(restart),
            "seed {seed}: disk-warm tallies diverged from cold"
        );
    }
    let warm_hits = stats.cache_hits - hits_before_warm;
    let hit_rate = warm_hits as f64 / requests as f64;
    assert_eq!(hit_rate, 1.0, "warm pass must be all cache hits: {stats:?}");
    assert_eq!(
        stats.cache_misses, requests,
        "each cold request executes once"
    );

    let cold_rate = requests as f64 / cold_secs;
    let warm_rate = requests as f64 / warm_secs;
    let idle_rate = requests as f64 / idle_secs;
    let restart_rate = requests as f64 / restart_secs;

    // ---- observability overhead: the same cold batch, obs off vs on ----
    //
    // Fresh servers (no disk spill, distinct seed range) so every
    // request executes; the only difference between the passes is the
    // registry. Byte-identity here is the differential guarantee, the
    // two rates feed the <5% perf guard.
    let mut obs_rows: Vec<(&str, f64, Vec<String>)> = Vec::new();
    for (label, metrics) in [
        ("service-obs-off", None),
        ("service-obs-on", Some(obs::Registry::default())),
    ] {
        let handle = Service::spawn(ServiceConfig {
            workers,
            cache_capacity: requests as usize + 8,
            slice_shots: 4096,
            metrics: metrics.clone(),
            ..ServiceConfig::default()
        })
        .expect("spawn service");
        let mut client = Client::connect(handle.addr());
        let (secs, lines) = run_pass(&mut client, &qasm, shots, 5_000..5_000 + requests, false);
        if let Some(registry) = &metrics {
            let snapshot = registry.snapshot();
            let execute = snapshot
                .histo("stage.execute")
                .expect("instrumented server recorded stage.execute");
            assert!(execute.count > 0, "instrumented pass observed nothing");
        }
        handle.shutdown();
        obs_rows.push((label, secs, lines));
    }
    assert_eq!(
        obs_rows[0].2, obs_rows[1].2,
        "instrumentation changed the served bytes"
    );
    let obs_off_rate = requests as f64 / obs_rows[0].1;
    let obs_on_rate = requests as f64 / obs_rows[1].1;

    // ---- sharded topology: coordinator + N workers over loopback ----
    //
    // Explicit statevector backend so simulation (not TCP framing)
    // dominates each request: that is the regime sharding targets, and
    // what the perf guard measures (sharded-4 >= sharded-1). Same
    // seeds for every N, so the response lines must be byte-identical
    // across topologies.
    let shard_requests = scale.pick(12u64, 4u64);
    let shard_shots = scale.pick(30_000u64, 3_000u64);
    let mut sharded = Vec::new(); // (n, secs, redispatched)
    let mut sharded_lines: Vec<Vec<String>> = Vec::new();
    for n in [1usize, 2, 4] {
        let worker_handles: Vec<ServiceHandle> = (0..n)
            .map(|_| {
                Service::spawn(ServiceConfig {
                    workers: 1,
                    slice_shots: 8192,
                    ..ServiceConfig::default()
                })
                .expect("spawn worker")
            })
            .collect();
        let coord = Coordinator::spawn(CoordinatorConfig {
            workers: worker_handles
                .iter()
                .map(|h| h.addr().to_string())
                .collect(),
            cache_capacity: shard_requests as usize + 8,
            ..CoordinatorConfig::default()
        })
        .expect("spawn coordinator");
        let mut client = Client::connect(coord.addr());
        let t0 = Instant::now();
        let mut lines = Vec::new();
        for seed in 1_000..1_000 + shard_requests {
            let response = client.round_trip(&Request::run(
                None,
                RunRequest::new(qasm.to_string(), shard_shots, seed, "sv"),
            ));
            match &response {
                Response::Ok { tallies, .. } => assert_eq!(
                    tallies.values().sum::<usize>(),
                    shard_shots as usize,
                    "sharded-{n} seed {seed}: shots unaccounted"
                ),
                other => panic!("sharded-{n} seed {seed}: unexpected response {other:?}"),
            }
            lines.push(response.to_line());
        }
        let secs = t0.elapsed().as_secs_f64();
        let redispatched: u64 = coord.worker_rows().iter().map(|r| r.redispatched).sum();
        sharded.push((n, secs, redispatched));
        sharded_lines.push(lines);
        coord.shutdown();
        for worker in worker_handles {
            worker.shutdown();
        }
    }
    assert_eq!(
        sharded_lines[0], sharded_lines[1],
        "2-worker sharding changed the served bytes"
    );
    assert_eq!(
        sharded_lines[0], sharded_lines[2],
        "4-worker sharding changed the served bytes"
    );

    let mut table = ResultTable::new(
        "Serving throughput, cold vs warm cache (ghz-12, auto backend)",
        &["pass", "requests", "shots_per_req", "secs", "req_per_sec"],
    );
    table.push_row(vec![
        "cold".into(),
        requests.to_string(),
        shots.to_string(),
        format!("{cold_secs:.3}"),
        format!("{cold_rate:.0}"),
    ]);
    table.push_row(vec![
        "warm".into(),
        requests.to_string(),
        shots.to_string(),
        format!("{warm_secs:.3}"),
        format!("{warm_rate:.0}"),
    ]);
    table.push_row(vec![
        format!("idle-{idle_conns}"),
        requests.to_string(),
        shots.to_string(),
        format!("{idle_secs:.3}"),
        format!("{idle_rate:.0}"),
    ]);
    table.push_row(vec![
        "restart-warm".into(),
        requests.to_string(),
        shots.to_string(),
        format!("{restart_secs:.3}"),
        format!("{restart_rate:.0}"),
    ]);
    for (label, secs, _) in &obs_rows {
        table.push_row(vec![
            (*label).to_string(),
            requests.to_string(),
            shots.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", requests as f64 / secs),
        ]);
    }
    for (n, secs, _) in &sharded {
        table.push_row(vec![
            format!("sharded-{n}"),
            shard_requests.to_string(),
            shard_shots.to_string(),
            format!("{secs:.3}"),
            format!("{:.1}", shard_requests as f64 / secs),
        ]);
    }
    bench::emit(&table);

    let mut report = BenchReport::new(
        "service_scaling",
        format!("ghz-{r} depolarizing p={p}, {shots} shots/request over loopback TCP"),
        scale == Scale::Quick,
    );
    // `shots` carries the request count for serving suites: the rate
    // column is requests/sec.
    report.push_timing_extra(
        "service-cold",
        "auto",
        "service",
        workers,
        requests as usize,
        cold_secs,
        vec![("sim_shots_per_request".to_string(), shots as f64)],
    );
    report.push_timing_extra(
        "service-warm",
        "auto",
        "service",
        workers,
        requests as usize,
        warm_secs,
        vec![
            ("cache_hit_rate".to_string(), hit_rate),
            ("sim_shots_per_request".to_string(), shots as f64),
        ],
    );
    report.push_timing_extra(
        "service-idle-256",
        "auto",
        "service",
        workers,
        requests as usize,
        idle_secs,
        vec![
            ("idle_connections".to_string(), idle_conns as f64),
            ("thread_delta".to_string(), thread_delta as f64),
            ("sim_shots_per_request".to_string(), shots as f64),
        ],
    );
    report.push_timing_extra(
        "service-restart-warm",
        "auto",
        "service",
        workers,
        requests as usize,
        restart_secs,
        vec![
            ("cache_hit_rate".to_string(), 1.0),
            ("sim_shots_per_request".to_string(), shots as f64),
        ],
    );
    for (label, secs, _) in &obs_rows {
        report.push_timing_extra(
            label,
            "auto",
            "service",
            workers,
            requests as usize,
            *secs,
            vec![("sim_shots_per_request".to_string(), shots as f64)],
        );
    }
    for (n, secs, redispatched) in &sharded {
        report.push_timing_extra(
            &format!("sharded-{n}"),
            "sv",
            "shard",
            *n,
            shard_requests as usize,
            *secs,
            vec![
                ("sim_shots_per_request".to_string(), shard_shots as f64),
                ("redispatched".to_string(), *redispatched as f64),
            ],
        );
    }
    bench::emit_report(&report);

    println!(
        "warm-cache path: {:.1}x the cold request rate ({warm_rate:.0}/s vs {cold_rate:.0}/s)",
        warm_rate / cold_rate
    );
    println!(
        "disk-warm restart: {:.1}x the cold request rate ({restart_rate:.0}/s vs {cold_rate:.0}/s); \
         {idle_conns} idle connections cost {thread_delta} threads",
        restart_rate / cold_rate
    );
    println!(
        "observability overhead: {:.1}% ({obs_on_rate:.0}/s instrumented vs {obs_off_rate:.0}/s bare)",
        100.0 * (1.0 - obs_on_rate / obs_off_rate)
    );
    assert!(
        warm_rate > cold_rate,
        "perf regression: warm-cache serving ({warm_rate:.0} req/s) is not strictly \
         faster than cold ({cold_rate:.0} req/s)"
    );
    assert!(
        restart_rate > cold_rate,
        "perf regression: disk-warm restart serving ({restart_rate:.0} req/s) is not \
         strictly faster than cold execution ({cold_rate:.0} req/s)"
    );
    assert!(
        thread_delta <= 8,
        "thread-per-connection regression: holding {idle_conns} idle sockets grew the \
         process by {thread_delta} threads"
    );
}
