//! Regenerates Table 2: per-QPU cost of the teledata scheme.

use analysis::table_io::ResultTable;
use compas::resources::teledata_costs;

fn main() {
    let mut t = ResultTable::new(
        "Table 2 teledata cost per QPU",
        &["step", "ancilla", "bell_pairs", "depth"],
    );
    for n in [1usize, 2, 4, 8, 16, 100] {
        let table = teledata_costs(n);
        for s in &table.steps {
            t.push_row(vec![
                format!("n={n} {}", s.label),
                s.ancilla.to_string(),
                (s.bell_pairs * s.repeats).to_string(),
                (s.depth * s.repeats).to_string(),
            ]);
        }
        t.push_row(vec![
            format!("n={n} total"),
            table.total_ancilla.to_string(),
            table.total_bell_pairs.to_string(),
            table.total_depth.to_string(),
        ]);
    }
    bench::emit(&t);
    println!("{}", teledata_costs(4));
}
