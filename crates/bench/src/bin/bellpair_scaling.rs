//! Regenerates the §2.5 comparison: Bell pairs consumed by the naive
//! sliced distribution (O(n²) worst case) versus COMPAS (O(n) per QPU),
//! both measured from the machine ledger and from the closed forms.

use analysis::table_io::ResultTable;
use compas::cswap::CswapScheme;
use compas::naive::{naive_bell_pair_cost, NaiveDistribution};
use compas::swap_test::CompasProtocol;

fn main() {
    let mut t = ResultTable::new(
        "Bell pair scaling naive vs COMPAS",
        &[
            "n",
            "k",
            "naive_closed_form",
            "naive_measured_raw",
            "compas_teledata",
            "compas_telegate",
        ],
    );
    for n in [2usize, 4, 6, 8, 12, 16] {
        let k = n; // the worst case of §2.5 has distances growing with n
        let naive_formula = naive_bell_pair_cost(n, k, true);
        let naive_measured = NaiveDistribution::new(k, n)
            .distribution_ledger()
            .raw_bell_pairs();
        let teledata = CompasProtocol::new(k, n, CswapScheme::Teledata)
            .ledger()
            .raw_bell_pairs();
        let telegate = CompasProtocol::new(k, n, CswapScheme::Telegate)
            .ledger()
            .raw_bell_pairs();
        t.push_row(vec![
            n.to_string(),
            k.to_string(),
            ResultTable::fmt_f64(naive_formula),
            naive_measured.to_string(),
            teledata.to_string(),
            telegate.to_string(),
        ]);
    }
    bench::emit(&t);
}
