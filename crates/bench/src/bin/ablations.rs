//! Regenerates the design-choice ablations of DESIGN.md: interleaved
//! placement, constant-depth Fanout vs CNOT cascade, qubit reuse, and
//! topology sensitivity.

use analysis::ablations::{
    fanout_ablation, fig2_comparison, ordering_ablation, qubit_reuse_ablation, topology_ablation,
};
use bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(50_000, 4_000);
    let exec = bench::bench_executor();

    bench::emit(&ordering_ablation(&[4, 6, 8, 12, 16], 2));
    bench::emit(&fanout_ablation(&exec, &[4, 8, 16, 32, 64], 0.003, shots));
    bench::emit(&qubit_reuse_ablation(&[4, 6, 8], 2));
    bench::emit(&topology_ablation(6, 2));
    bench::emit(&fig2_comparison(4, &[1, 2, 4, 8]));
    println!(
        "note: depths include the monolithic GHZ-chain preparation (linear in the\n\
         control width); the paper's Fig 2 counts the CSWAP stage alone. The\n\
         distributed protocol prepares its GHZ in constant depth (Fig 4)."
    );
}
