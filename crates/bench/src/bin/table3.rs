//! Regenerates Table 3: scheme comparison with the 3-to-1 distillation
//! memory estimate. The bold row of the paper (teledata) must come out
//! cheapest in memory.

use analysis::table_io::ResultTable;
use compas::resources::scheme_comparison;

fn main() {
    let mut t = ResultTable::new(
        "Table 3 scheme comparison",
        &[
            "n",
            "k",
            "scheme",
            "ancilla",
            "bell_pairs",
            "depth",
            "memory",
        ],
    );
    for (n, k) in [(1usize, 4usize), (4, 4), (10, 4), (100, 8)] {
        for row in scheme_comparison(n, k) {
            t.push_row(vec![
                n.to_string(),
                k.to_string(),
                row.scheme.to_string(),
                row.ancilla.to_string(),
                ResultTable::fmt_f64(row.bell_pairs),
                row.depth.to_string(),
                ResultTable::fmt_f64(row.memory_estimate),
            ]);
        }
    }
    bench::emit(&t);
    println!("recommendation: teledata (lowest memory estimate at every width)");
}
