//! Criterion-free micro-benchmark of the unified execution path: prints
//! shots/sec on the Table 4 workload (residual-error sampling of the
//! noisy constant-depth Fanout, m = 6 targets, p = 3e-3) for
//! `Executor::Sequential` and for `Executor::Pooled` at 1, 2, 4, …
//! threads, plus the parallel speedup — and asserts that the two modes
//! produce identical tallies, since that equivalence is the engine's
//! core guarantee. The numbers are the perf baseline future PRs record.
//!
//! Run with: `cargo run --release --bin engine_scaling [--quick]`

use analysis::fanout_noise::FanoutResidualJob;
use analysis::table_io::ResultTable;
use bench::{BenchReport, Scale};
use circuit::circuit::Circuit;
use engine::{Counts, Engine, Executor, ExperimentBuilder, MemorySink, ShotPlan};
use qsim::statevector::StateVector;
use std::collections::HashMap;
use std::time::Instant;

fn run_grid(
    exec: &Executor,
    targets: usize,
    p: f64,
    shots: usize,
) -> HashMap<stabilizer::pauli::PauliString, u64> {
    // The declarative shape every bench driver shares: a (point grid,
    // shots, executor) triple — here a single-point grid.
    let mut results = ExperimentBuilder::new()
        .point((targets, p))
        .shots(shots)
        .run_jobs(exec, |&(m, p), shots, seed| {
            FanoutResidualJob::new(m, p, shots, seed)
        });
    results.pop().expect("one grid point").1
}

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(200_000, 20_000);
    let (targets, p) = (6usize, 0.003);

    // Sequential reference: the same unified path, sequential mode.
    let seq_exec = Executor::sequential(bench::ROOT_SEED);
    let t0 = Instant::now();
    let seq_tally = run_grid(&seq_exec, targets, p, shots);
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_rate = shots as f64 / seq_secs;
    assert_eq!(seq_tally.values().sum::<u64>(), shots as u64);

    let mut t = ResultTable::new(
        "Engine scaling on the Table 4 workload",
        &[
            "mode",
            "threads",
            "shots",
            "secs",
            "shots_per_sec",
            "speedup",
        ],
    );
    t.push_row(vec![
        "sequential".into(),
        "1".into(),
        shots.to_string(),
        format!("{seq_secs:.3}"),
        format!("{seq_rate:.0}"),
        "1.00".into(),
    ]);
    let mut report = BenchReport::new(
        "engine_scaling",
        format!("fanout-residual m={targets} p={p}"),
        scale == Scale::Quick,
    );
    report.push_timing(
        "sequential",
        "pauli-frame",
        "sequential",
        1,
        shots,
        seq_secs,
    );

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = 1usize;
    let mut measured: Vec<(usize, f64)> = Vec::new();
    loop {
        let exec = Executor::pooled(Engine::with_threads(threads), bench::ROOT_SEED);
        let t0 = Instant::now();
        let tally = run_grid(&exec, targets, p, shots);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            tally, seq_tally,
            "pooled mode diverged from the sequential reference"
        );
        let rate = shots as f64 / secs;
        measured.push((threads, rate));
        t.push_row(vec![
            "pooled".into(),
            threads.to_string(),
            shots.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}", rate / seq_rate),
        ]);
        report.push_timing(
            &format!("pooled-{threads}"),
            "pauli-frame",
            "pooled",
            threads,
            shots,
            secs,
        );
        if threads >= max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
    // ------------------------------------------------------------------
    // Shot-trace recording overhead: the same plan executed with and
    // without a TraceSink attached. Statevector with a T-laden layer
    // keeps the per-shot cost at the microsecond scale, so the guard
    // measures the per-shot tracing cost against real work rather than
    // against an artificially free shot. The perf guard asserts the
    // traced rate stays within 5% of the untraced one.
    // ------------------------------------------------------------------
    let record_shots = scale.pick(50_000, 5_000);
    let mut tladen = Circuit::new(8, 8);
    for layer in 0..3 {
        for q in 0..8 {
            tladen.h(q);
            tladen.t(q);
        }
        for q in 0..7 {
            tladen.cx(q, q + 1);
        }
        if layer == 1 {
            for q in 0..8 {
                tladen.rz(q, 0.37 * (q as f64 + 1.0));
            }
        }
    }
    for q in 0..8 {
        tladen.measure(q, q);
    }
    let plan = ShotPlan::new(
        tladen,
        StateVector::new(8),
        record_shots as u64,
        bench::ROOT_SEED,
    );
    let engine = Engine::with_threads(4);
    // Warm up caches and the thread pool before timing either side,
    // then alternate best-of-3 trials so scheduler noise hits both
    // sides evenly — the guard compares minima, not single runs.
    engine.run_plan_range(&plan, 0..(record_shots as u64).min(1_000));

    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let mut untraced = Counts::new();
    let mut traced = Counts::new();
    let mut records = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        untraced = engine.run_plan(&plan);
        off_secs = off_secs.min(t0.elapsed().as_secs_f64());

        let sink = MemorySink::new();
        let t0 = Instant::now();
        traced = engine.run_plan_range_traced(&plan, 0..record_shots as u64, &sink);
        on_secs = on_secs.min(t0.elapsed().as_secs_f64());
        records = sink.len();
    }
    assert_eq!(traced, untraced, "tracing changed the tallies");
    assert_eq!(records, record_shots, "tracing dropped records");

    for (label, secs) in [("record-off", off_secs), ("record-on", on_secs)] {
        t.push_row(vec![
            label.into(),
            "4".into(),
            record_shots.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", record_shots as f64 / secs),
            format!("{:.2}", off_secs / secs),
        ]);
        report.push_timing(label, "statevector", "pooled", 4, record_shots, secs);
    }
    println!(
        "recording overhead: {:.1}% on {record_shots} statevector shots",
        (off_secs / on_secs).recip().mul_add(100.0, -100.0)
    );

    bench::emit(&t);
    bench::emit_report(&report);

    if let Some(&(n, rate)) = measured.iter().find(|&&(n, _)| n >= 4) {
        println!(
            "speedup at {n} threads: {:.2}x over the sequential mode",
            rate / seq_rate
        );
    }
}
