//! Criterion-free micro-benchmark of the shot-execution engine: prints
//! shots/sec on the Table 4 workload (residual-error sampling of the
//! noisy constant-depth Fanout, m = 6 targets, p = 3e-3) for the
//! sequential reference path and for the engine at 1, 2, 4, … threads,
//! plus the parallel speedup. The numbers are the perf baseline future
//! PRs record in `BENCH_*.json`.
//!
//! Run with: `cargo run --release --bin engine_scaling [--quick]`

use analysis::fanout_noise::{fanout_error_distribution, FanoutResidualJob};
use analysis::table_io::ResultTable;
use bench::Scale;
use engine::{BatchRunner, Engine};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let shots = scale.pick(200_000, 20_000);
    let (targets, p) = (6usize, 0.003);

    // Sequential reference: the pre-engine single-RNG loop.
    let mut rng = bench::bench_rng();
    let t0 = Instant::now();
    let row = fanout_error_distribution(targets, p, shots, 4, &mut rng);
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_rate = shots as f64 / seq_secs;
    assert!(row.identity_probability > 0.0);

    let mut t = ResultTable::new(
        "Engine scaling on the Table 4 workload",
        &["path", "threads", "shots", "secs", "shots_per_sec", "speedup"],
    );
    t.push_row(vec![
        "sequential".into(),
        "1".into(),
        shots.to_string(),
        format!("{seq_secs:.3}"),
        format!("{seq_rate:.0}"),
        "1.00".into(),
    ]);

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = 1usize;
    let mut measured: Vec<(usize, f64)> = Vec::new();
    loop {
        let engine = Engine::with_threads(threads);
        let job = FanoutResidualJob::new(targets, p, shots, bench::ROOT_SEED);
        let t0 = Instant::now();
        let tallies = BatchRunner::new(&engine).run_batch(std::slice::from_ref(&job));
        let secs = t0.elapsed().as_secs_f64();
        let total: u64 = tallies[0].values().sum();
        assert_eq!(total, shots as u64);
        let rate = shots as f64 / secs;
        measured.push((threads, rate));
        t.push_row(vec![
            "engine".into(),
            threads.to_string(),
            shots.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}", rate / seq_rate),
        ]);
        if threads >= max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
    bench::emit(&t);

    if let Some(&(n, rate)) = measured.iter().find(|&&(n, _)| n >= 4) {
        println!(
            "speedup at {n} threads: {:.2}x over the sequential path",
            rate / seq_rate
        );
    }
}
