//! Verifies Appendix B exactly: teleoperation fidelities with a
//! depolarized Bell pair satisfy F_CNOT, F_Toffoli ≥ 1 − 3p/4 and
//! F_teledata = 1 − p/2, with the analytic worst cases saturating.

use analysis::network_bounds::{
    cnot_worst_case_input, remote_cnot_fidelity, remote_toffoli_fidelity, teledata_fidelity,
    toffoli_worst_case_input,
};
use analysis::table_io::ResultTable;
use qsim::qrand::random_pure_state;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut t = ResultTable::new(
        "Appendix B teleoperation bounds",
        &["primitive", "p", "input", "fidelity", "bound", "margin"],
    );
    for p in [0.05f64, 0.1, 0.2, 0.4, 0.8] {
        // Random inputs.
        for i in 0..3 {
            let phi = random_pure_state(1, &mut rng);
            let psi = random_pure_state(1, &mut rng);
            let f = remote_cnot_fidelity(&phi, &psi, p);
            let bound = 1.0 - 0.75 * p;
            t.push_row(vec![
                "cnot".into(),
                format!("{p}"),
                format!("random{i}"),
                ResultTable::fmt_f64(f),
                ResultTable::fmt_f64(bound),
                ResultTable::fmt_f64(f - bound),
            ]);
        }
        // Worst cases.
        let (phi, psi) = cnot_worst_case_input();
        let f = remote_cnot_fidelity(&phi, &psi, p);
        t.push_row(vec![
            "cnot".into(),
            format!("{p}"),
            "|+>|1> (worst)".into(),
            ResultTable::fmt_f64(f),
            ResultTable::fmt_f64(1.0 - 0.75 * p),
            ResultTable::fmt_f64(f - (1.0 - 0.75 * p)),
        ]);
        let (a, b, c) = toffoli_worst_case_input();
        let f = remote_toffoli_fidelity(&a, &b, &c, p);
        t.push_row(vec![
            "toffoli".into(),
            format!("{p}"),
            "worst".into(),
            ResultTable::fmt_f64(f),
            ResultTable::fmt_f64(1.0 - 0.75 * p),
            ResultTable::fmt_f64(f - (1.0 - 0.75 * p)),
        ]);
        let phi = random_pure_state(1, &mut rng);
        let f = teledata_fidelity(&phi, p);
        t.push_row(vec![
            "teledata".into(),
            format!("{p}"),
            "any".into(),
            ResultTable::fmt_f64(f),
            ResultTable::fmt_f64(1.0 - 0.5 * p),
            ResultTable::fmt_f64(f - (1.0 - 0.5 * p)),
        ]);
    }
    bench::emit(&t);
    println!(
        "all margins must be ≥ 0 (worst cases ≈ 0): verified exactly by density-matrix evolution"
    );
}
