//! Regenerates Fig 9c: overall COMPAS fidelity estimate
//! (1 − p_GHZ)·(1 − p_CSWAP)^(k−1) vs state width, k ∈ {8, 12}.

use analysis::overall::{fig9c, fig9c_result};
use bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let characterize_shots = scale.pick(50_000, 3_000);
    let shots_per_input = scale.pick(100, 10);
    let exec = bench::bench_executor();
    let widths: Vec<usize> = (2..=10).collect();
    let series = fig9c(
        &exec,
        &widths,
        &[8, 12],
        &[0.001, 0.003, 0.005],
        characterize_shots,
        shots_per_input,
    );
    bench::emit(&fig9c_result(&series));
}
