//! Shared scaffolding for the table/figure regeneration binaries.
//!
//! Every binary accepts `--quick` (or the `COMPAS_QUICK=1` environment
//! variable) to run a reduced-shot smoke version; the default parameters
//! match the paper's settings (e.g. 100 000 shots for Table 4).

use analysis::table_io::{default_results_dir, ResultTable};
use engine::{Engine, Executor};

mod report;

pub use report::{BenchEntry, BenchReport};

/// Shot-count scale for the regeneration binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full settings.
    Full,
    /// A fast smoke-test scale for CI.
    Quick,
}

impl Scale {
    /// Reads the scale from CLI args and environment.
    pub fn from_env() -> Self {
        let quick_flag = std::env::args().any(|a| a == "--quick");
        let quick_env = std::env::var("COMPAS_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        if quick_flag || quick_env {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Chooses between the full and quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// The root seed shared by all binaries; per-job streams derive from it
/// via `engine::derive_stream_seed`.
pub const ROOT_SEED: u64 = 0xC0_45;

/// The execution context every binary samples through: a pooled
/// executor over the environment-configured engine (`COMPAS_THREADS` /
/// `--threads N` / `COMPAS_CHUNK`, defaults to all available cores),
/// rooted at [`ROOT_SEED`].
pub fn bench_executor() -> Executor {
    let engine = Engine::from_env();
    eprintln!("[engine] {} worker thread(s)", engine.threads());
    Executor::pooled(engine, ROOT_SEED)
}

/// Prints a result table and persists its CSV under `results/`.
pub fn emit(table: &ResultTable) {
    print!("{}", table.to_text());
    match table.write_csv(&default_results_dir()) {
        Ok(path) => println!("[csv] {}\n", path.display()),
        Err(err) => println!("[csv] not written: {err}\n"),
    }
}

/// Persists a machine-readable perf report under `results/bench/`.
pub fn emit_report(report: &BenchReport) {
    match report.write() {
        Ok(path) => println!("[json] {}\n", path.display()),
        Err(err) => println!("[json] not written: {err}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 1), 10);
        assert_eq!(Scale::Quick.pick(10, 1), 1);
    }

    #[test]
    fn bench_executor_is_rooted_at_the_shared_seed() {
        assert_eq!(bench_executor().root_seed(), ROOT_SEED);
    }
}
