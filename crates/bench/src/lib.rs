//! Shared scaffolding for the table/figure regeneration binaries.
//!
//! Every binary accepts `--quick` (or the `COMPAS_QUICK=1` environment
//! variable) to run a reduced-shot smoke version; the default parameters
//! match the paper's settings (e.g. 100 000 shots for Table 4).

use analysis::table_io::{default_results_dir, ResultTable};
use engine::Engine;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shot-count scale for the regeneration binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full settings.
    Full,
    /// A fast smoke-test scale for CI.
    Quick,
}

impl Scale {
    /// Reads the scale from CLI args and environment.
    pub fn from_env() -> Self {
        let quick_flag = std::env::args().any(|a| a == "--quick");
        let quick_env = std::env::var("COMPAS_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        if quick_flag || quick_env {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Chooses between the full and quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// The root seed shared by all binaries; per-job streams derive from it
/// via `engine::derive_stream_seed`.
pub const ROOT_SEED: u64 = 0xC0_45;

/// The deterministic RNG used by the remaining sequential paths.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(ROOT_SEED)
}

/// The shot-execution engine every binary samples through, configured
/// from `COMPAS_THREADS` / `--threads N` / `COMPAS_CHUNK` (defaults to
/// all available cores).
pub fn bench_engine() -> Engine {
    let engine = Engine::from_env();
    eprintln!("[engine] {} worker thread(s)", engine.threads());
    engine
}

/// Prints a result table and persists its CSV under `results/`.
pub fn emit(table: &ResultTable) {
    print!("{}", table.to_text());
    match table.write_csv(&default_results_dir()) {
        Ok(path) => println!("[csv] {}\n", path.display()),
        Err(err) => println!("[csv] not written: {err}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 1), 10);
        assert_eq!(Scale::Quick.pick(10, 1), 1);
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = bench_rng().random();
        let b: u64 = bench_rng().random();
        assert_eq!(a, b);
    }
}
