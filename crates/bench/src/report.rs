//! Machine-readable benchmark reports.
//!
//! The scaling binaries historically printed shots/sec and threw the
//! numbers away; CSVs under `results/` captured figures, not perf. A
//! [`BenchReport`] is the JSON counterpart CI can keep: each run of a
//! scaling binary writes `results/bench/<suite>.json`, the perf-guard
//! workflow step validates it and uploads it as an artifact, so the
//! repository accumulates a perf trajectory instead of log lines.
//!
//! Serialization is built on the shared [`jsonlite`] crate (the
//! workspace is offline — no serde); [`BenchReport::from_json`] parses
//! a report back, so the schema is round-trip-tested in Rust, not just
//! validated by the CI Python guard. The schema is documented in the
//! README's "Circuit compilation & perf tracking" section:
//!
//! ```json
//! {
//!   "suite": "backend_scaling",
//!   "workload": "ghz-12 depolarizing p=2e-3",
//!   "quick": true,
//!   "entries": [
//!     {
//!       "label": "statevector-compiled",
//!       "backend": "statevector",
//!       "mode": "sequential",
//!       "threads": 1,
//!       "shots": 10000,
//!       "secs": 0.41,
//!       "shots_per_sec": 24390.2
//!     }
//!   ]
//! }
//! ```
//!
//! Entries may carry suite-specific **extra numeric fields** (e.g.
//! `service_scaling`'s `cache_hit_rate`), serialized as additional
//! keys after the fixed schema ones.

use analysis::table_io::default_results_dir;
use jsonlite::Json;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// One timed configuration of a bench suite.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Unique row label within the suite (e.g.
    /// `"statevector-interpreted"`), the key the CI perf guard joins on.
    pub label: String,
    /// Simulation backend name (`engine::Backend::name` convention) or,
    /// for suites that time a non-`Backend` sampler, a workload-specific
    /// tag (e.g. `engine_scaling`'s `"pauli-frame"`).
    pub backend: String,
    /// Execution mode (`"sequential"` / `"pooled"` / `"service"`).
    pub mode: String,
    /// Worker threads the entry ran with.
    pub threads: usize,
    /// Shots executed (for serving suites: requests issued).
    pub shots: usize,
    /// Wall time in seconds.
    pub secs: f64,
    /// Throughput, `shots / secs`.
    pub shots_per_sec: f64,
    /// Suite-specific extra numeric fields, serialized as additional
    /// JSON keys in order (e.g. `("cache_hit_rate", 1.0)`).
    pub extra: Vec<(String, f64)>,
}

/// The fixed entry keys, in schema order. Anything else in a parsed
/// entry is collected into [`BenchEntry::extra`].
const ENTRY_KEYS: [&str; 7] = [
    "label",
    "backend",
    "mode",
    "threads",
    "shots",
    "secs",
    "shots_per_sec",
];

/// A suite of timed entries, serialized to `results/bench/<suite>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    suite: String,
    workload: String,
    quick: bool,
    entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report for `suite` (the file stem) on `workload`.
    pub fn new(suite: impl Into<String>, workload: impl Into<String>, quick: bool) -> Self {
        BenchReport {
            suite: suite.into(),
            workload: workload.into(),
            quick,
            entries: Vec::new(),
        }
    }

    /// Appends a timed entry.
    pub fn push(&mut self, entry: BenchEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// Convenience for the common shape: label/backend/mode/threads plus
    /// a `(shots, secs)` measurement.
    pub fn push_timing(
        &mut self,
        label: &str,
        backend: &str,
        mode: &str,
        threads: usize,
        shots: usize,
        secs: f64,
    ) -> &mut Self {
        self.push(BenchEntry {
            label: label.to_string(),
            backend: backend.to_string(),
            mode: mode.to_string(),
            threads,
            shots,
            secs,
            shots_per_sec: shots as f64 / secs,
            extra: Vec::new(),
        })
    }

    /// Like [`BenchReport::push_timing`], with suite-specific extra
    /// numeric fields appended to the entry's JSON object.
    #[allow(clippy::too_many_arguments)]
    pub fn push_timing_extra(
        &mut self,
        label: &str,
        backend: &str,
        mode: &str,
        threads: usize,
        shots: usize,
        secs: f64,
        extra: Vec<(String, f64)>,
    ) -> &mut Self {
        self.push_timing(label, backend, mode, threads, shots, secs);
        self.entries.last_mut().expect("just pushed").extra = extra;
        self
    }

    /// The entries pushed so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// The report as a [`Json`] value (schema order preserved).
    pub fn to_json_value(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut members = vec![
                    ("label".to_string(), Json::str(&e.label)),
                    ("backend".to_string(), Json::str(&e.backend)),
                    ("mode".to_string(), Json::str(&e.mode)),
                    ("threads".to_string(), Json::from_usize(e.threads)),
                    ("shots".to_string(), Json::from_usize(e.shots)),
                    ("secs".to_string(), Json::num(e.secs)),
                    ("shots_per_sec".to_string(), Json::num(e.shots_per_sec)),
                ];
                for (k, v) in &e.extra {
                    members.push((k.clone(), Json::num(*v)));
                }
                Json::Obj(members)
            })
            .collect();
        Json::obj(vec![
            ("suite", Json::str(&self.suite)),
            ("workload", Json::str(&self.workload)),
            ("quick", Json::Bool(self.quick)),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Renders the report as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parses a JSON document produced by [`BenchReport::to_json`] back
    /// into a report. Unknown numeric entry keys become
    /// [`BenchEntry::extra`] fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(src: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(src).map_err(|e| e.to_string())?;
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing \"{key}\""));
        let mut report = BenchReport::new(
            field("suite")?
                .as_str()
                .ok_or("\"suite\" must be a string")?,
            field("workload")?
                .as_str()
                .ok_or("\"workload\" must be a string")?,
            field("quick")?
                .as_bool()
                .ok_or("\"quick\" must be a boolean")?,
        );
        let entries = field("entries")?
            .as_arr()
            .ok_or("\"entries\" must be an array")?;
        for (i, entry) in entries.iter().enumerate() {
            let members = entry
                .as_obj()
                .ok_or_else(|| format!("entry {i} is not an object"))?;
            let get = |key: &str| {
                entry
                    .get(key)
                    .ok_or_else(|| format!("entry {i}: missing \"{key}\""))
            };
            let get_str = |key: &str| {
                get(key)?
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i}: \"{key}\" must be a string"))
            };
            let get_num = |key: &str| {
                get(key)?
                    .as_f64()
                    .ok_or_else(|| format!("entry {i}: \"{key}\" must be a number"))
            };
            let get_count = |key: &str| {
                get(key)?
                    .as_u64()
                    .ok_or_else(|| format!("entry {i}: \"{key}\" must be a non-negative integer"))
            };
            let extra = members
                .iter()
                .filter(|(k, _)| !ENTRY_KEYS.contains(&k.as_str()))
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("entry {i}: extra field \"{k}\" must be a number"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            report.push(BenchEntry {
                label: get_str("label")?,
                backend: get_str("backend")?,
                mode: get_str("mode")?,
                threads: get_count("threads")? as usize,
                shots: get_count("shots")? as usize,
                secs: get_num("secs")?,
                shots_per_sec: get_num("shots_per_sec")?,
                extra,
            });
        }
        Ok(report)
    }

    /// Writes the JSON under `results/bench/`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = default_results_dir().join("bench");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.suite));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("unit_suite", "ghz-3", true);
        r.push_timing("a-compiled", "statevector", "sequential", 1, 100, 0.5);
        r.push_timing("b \"quoted\"", "stabilizer", "pooled", 4, 200, 0.25);
        r
    }

    #[test]
    fn json_contains_schema_fields_and_rates() {
        let j = sample().to_json();
        for key in [
            "\"suite\"",
            "\"workload\"",
            "\"quick\"",
            "\"entries\"",
            "\"label\"",
            "\"backend\"",
            "\"mode\"",
            "\"threads\"",
            "\"shots\"",
            "\"secs\"",
            "\"shots_per_sec\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains("\"shots_per_sec\": 200"));
        assert!(j.contains("\\\"quoted\\\""));
    }

    #[test]
    fn json_parses_back_identically() {
        let report = sample();
        let parsed = BenchReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn extra_fields_serialize_and_parse() {
        let mut r = BenchReport::new("svc", "bell", false);
        r.push_timing_extra(
            "warm",
            "auto",
            "service",
            2,
            50,
            0.1,
            vec![("cache_hit_rate".to_string(), 1.0)],
        );
        let j = r.to_json();
        assert!(j.contains("\"cache_hit_rate\": 1"));
        let parsed = BenchReport::from_json(&j).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(
            parsed.entries()[0].extra,
            vec![("cache_hit_rate".into(), 1.0)]
        );
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let err = BenchReport::from_json("{}").unwrap_err();
        assert!(err.contains("suite"), "{err}");
        let err = BenchReport::from_json(
            r#"{"suite":"s","workload":"w","quick":true,"entries":[{"label":"x"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("backend"), "{err}");
    }
}
