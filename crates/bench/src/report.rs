//! Machine-readable benchmark reports.
//!
//! The scaling binaries historically printed shots/sec and threw the
//! numbers away; CSVs under `results/` captured figures, not perf. A
//! [`BenchReport`] is the JSON counterpart CI can keep: each run of a
//! scaling binary writes `results/bench/<suite>.json`, the perf-guard
//! workflow step validates it and uploads it as an artifact, so the
//! repository accumulates a perf trajectory instead of log lines.
//!
//! The schema is hand-rolled (the workspace is offline — no serde) and
//! documented in the README's "Circuit compilation & perf tracking"
//! section:
//!
//! ```json
//! {
//!   "suite": "backend_scaling",
//!   "workload": "ghz-12 depolarizing p=2e-3",
//!   "quick": true,
//!   "entries": [
//!     {
//!       "label": "statevector-compiled",
//!       "backend": "statevector",
//!       "mode": "sequential",
//!       "threads": 1,
//!       "shots": 10000,
//!       "secs": 0.41,
//!       "shots_per_sec": 24390.2
//!     }
//!   ]
//! }
//! ```

use analysis::table_io::default_results_dir;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// One timed configuration of a bench suite.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Unique row label within the suite (e.g.
    /// `"statevector-interpreted"`), the key the CI perf guard joins on.
    pub label: String,
    /// Simulation backend name (`engine::Backend::name` convention) or,
    /// for suites that time a non-`Backend` sampler, a workload-specific
    /// tag (e.g. `engine_scaling`'s `"pauli-frame"`).
    pub backend: String,
    /// Execution mode (`"sequential"` / `"pooled"`).
    pub mode: String,
    /// Worker threads the entry ran with.
    pub threads: usize,
    /// Shots executed.
    pub shots: usize,
    /// Wall time in seconds.
    pub secs: f64,
    /// Throughput, `shots / secs`.
    pub shots_per_sec: f64,
}

/// A suite of timed entries, serialized to `results/bench/<suite>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    suite: String,
    workload: String,
    quick: bool,
    entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report for `suite` (the file stem) on `workload`.
    pub fn new(suite: impl Into<String>, workload: impl Into<String>, quick: bool) -> Self {
        BenchReport {
            suite: suite.into(),
            workload: workload.into(),
            quick,
            entries: Vec::new(),
        }
    }

    /// Appends a timed entry.
    pub fn push(&mut self, entry: BenchEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// Convenience for the common shape: label/backend/mode/threads plus
    /// a `(shots, secs)` measurement.
    pub fn push_timing(
        &mut self,
        label: &str,
        backend: &str,
        mode: &str,
        threads: usize,
        shots: usize,
        secs: f64,
    ) -> &mut Self {
        self.push(BenchEntry {
            label: label.to_string(),
            backend: backend.to_string(),
            mode: mode.to_string(),
            threads,
            shots,
            secs,
            shots_per_sec: shots as f64 / secs,
        })
    }

    /// The entries pushed so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_str(&self.suite)));
        out.push_str(&format!("  \"workload\": {},\n", json_str(&self.workload)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", json_str(&e.label)));
            out.push_str(&format!("      \"backend\": {},\n", json_str(&e.backend)));
            out.push_str(&format!("      \"mode\": {},\n", json_str(&e.mode)));
            out.push_str(&format!("      \"threads\": {},\n", e.threads));
            out.push_str(&format!("      \"shots\": {},\n", e.shots));
            out.push_str(&format!("      \"secs\": {},\n", json_f64(e.secs)));
            out.push_str(&format!(
                "      \"shots_per_sec\": {}\n",
                json_f64(e.shots_per_sec)
            ));
            out.push_str(if i + 1 == self.entries.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON under `results/bench/`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = default_results_dir().join("bench");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.suite));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number from an `f64` (non-finite values become `0` — JSON has
/// no NaN/Infinity, and a zeroed rate fails any ≥-guard loudly).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("unit_suite", "ghz-3", true);
        r.push_timing("a-compiled", "statevector", "sequential", 1, 100, 0.5);
        r.push_timing("b \"quoted\"", "stabilizer", "pooled", 4, 200, 0.25);
        r
    }

    #[test]
    fn json_contains_schema_fields_and_rates() {
        let j = sample().to_json();
        for key in [
            "\"suite\"",
            "\"workload\"",
            "\"quick\"",
            "\"entries\"",
            "\"label\"",
            "\"backend\"",
            "\"mode\"",
            "\"threads\"",
            "\"shots\"",
            "\"secs\"",
            "\"shots_per_sec\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains("\"shots_per_sec\": 200"));
        assert!(j.contains("\\\"quoted\\\""));
    }

    #[test]
    fn json_is_structurally_balanced() {
        // Cheap well-formedness probe without a parser: balanced braces
        // and brackets, no trailing comma before a closer.
        let j = sample().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  ]"));
        assert!(!j.contains(",\n    }"));
    }

    #[test]
    fn non_finite_rates_serialize_as_zero() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
