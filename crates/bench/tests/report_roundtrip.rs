//! The bench-report schema, validated in Rust: `BenchReport::to_json`
//! must parse back identically through the shared `jsonlite` parser —
//! the CI Python perf-guard is no longer the only reader of these
//! artifacts.

use bench::{BenchEntry, BenchReport};
use jsonlite::Json;

fn perf_style_report() -> BenchReport {
    let mut report = BenchReport::new(
        "backend_scaling",
        "ghz-12 depolarizing p=0.002 — with \"quotes\" and a\nnewline",
        true,
    );
    report.push_timing(
        "statevector-interpreted",
        "statevector",
        "sequential",
        1,
        10_000,
        0.93,
    );
    report.push_timing(
        "statevector-compiled",
        "statevector",
        "sequential",
        1,
        10_000,
        0.71,
    );
    report.push_timing("stabilizer", "stabilizer", "pooled", 4, 10_000, 0.031);
    report.push_timing_extra(
        "service-warm",
        "auto",
        "service",
        2,
        100,
        0.004,
        vec![
            ("cache_hit_rate".to_string(), 1.0),
            ("sim_shots_per_request".to_string(), 20_000.0),
        ],
    );
    report
}

#[test]
fn to_json_from_json_is_the_identity() {
    let report = perf_style_report();
    let parsed = BenchReport::from_json(&report.to_json()).expect("parse back");
    assert_eq!(parsed, report);
    // And the round trip is a fixed point at the byte level too.
    assert_eq!(parsed.to_json(), report.to_json());
}

#[test]
fn emitted_json_satisfies_the_perf_guard_schema() {
    // The exact invariants CI's Python guard checks, verified here so
    // a schema regression fails `cargo test` before it fails CI.
    let doc = Json::parse(&perf_style_report().to_json()).expect("well-formed JSON");
    for key in ["suite", "workload", "quick", "entries"] {
        assert!(doc.get(key).is_some(), "missing {key}");
    }
    let entries = doc.get("entries").unwrap().as_arr().unwrap();
    assert!(!entries.is_empty());
    for entry in entries {
        for key in [
            "label",
            "backend",
            "mode",
            "threads",
            "shots",
            "secs",
            "shots_per_sec",
        ] {
            assert!(entry.get(key).is_some(), "entry missing {key}");
        }
        assert!(entry.get("shots_per_sec").unwrap().as_f64().unwrap() > 0.0);
    }
    // The serving entry carries its extra fields as plain keys.
    let warm = entries
        .iter()
        .find(|e| e.get("label").and_then(Json::as_str) == Some("service-warm"))
        .expect("service-warm entry");
    assert_eq!(warm.get("cache_hit_rate").and_then(Json::as_f64), Some(1.0));
}

#[test]
fn from_json_round_trips_hand_written_documents() {
    // A document written by some other tool (different key order,
    // extra whitespace) still parses; extras survive.
    let src = r#"{
        "suite": "svc", "workload": "w", "quick": false,
        "entries": [{
            "shots_per_sec": 10.5, "label": "x", "mode": "service",
            "backend": "auto", "threads": 1, "shots": 21, "secs": 2.0,
            "cache_hit_rate": 0.5
        }]
    }"#;
    let report = BenchReport::from_json(src).expect("parse");
    let entry: &BenchEntry = &report.entries()[0];
    assert_eq!(entry.shots, 21);
    assert_eq!(entry.extra, vec![("cache_hit_rate".to_string(), 0.5)]);
    // Re-emitting normalizes to schema order and parses back equal.
    assert_eq!(
        BenchReport::from_json(&report.to_json()).expect("reparse"),
        report
    );
}
