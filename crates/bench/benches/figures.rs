//! Criterion benches timing the figure regenerators at reduced scale
//! (the full-scale runs live in the `table4`/`fig9*`/`fig10` binaries).

use analysis::cswap_fidelity::{cswap_classical_fidelity, fig9b_inputs, CswapNoiseModel};
use analysis::fanout_noise::fanout_error_distribution;
use analysis::ghz_fidelity::ghz_fidelity_sampled;
use analysis::network_bounds::{fig10, remote_cnot_fidelity};
use compas::cswap::CswapScheme;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_kernels");
    group.sample_size(10);

    group.bench_function("table4_point_2k_shots", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| fanout_error_distribution(6, 0.003, 2_000, 4, &mut rng));
    });

    group.bench_function("fig9a_point_2k_shots", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| ghz_fidelity_sampled(8, 0.003, 2_000, &mut rng));
    });

    group.bench_function("fig9b_point_n3", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        let model = CswapNoiseModel::characterize(3, 0.003, 2_000, &mut rng);
        let inputs = fig9b_inputs(3, &mut rng);
        b.iter(|| cswap_classical_fidelity(CswapScheme::Teledata, &model, &inputs, 10, &mut rng));
    });

    group.bench_function("appendix_b_cnot_exact", |b| {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let phi = vec![mathkit::complex::c64(h, 0.0), mathkit::complex::c64(h, 0.0)];
        let psi = vec![
            mathkit::complex::c64(0.0, 0.0),
            mathkit::complex::c64(1.0, 0.0),
        ];
        b.iter(|| remote_cnot_fidelity(&phi, &psi, 0.1));
    });

    group.bench_function("fig10_sweep", |b| {
        let p_grid: Vec<f64> = (0..50).map(|i| 1e-8 * 1.3f64.powi(i)).collect();
        b.iter(|| fig10(&[1e-1, 1e-2, 1e-3, 1e-4], &p_grid, 100));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
