//! Criterion benches for the simulation substrates: statevector,
//! density-matrix, stabilizer tableau, and Pauli-frame throughput.

use circuit::circuit::Circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::density::DensityMatrix;
use qsim::runner::run_shot;
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stabilizer::frame::FrameSimulator;
use stabilizer::tableau::Tableau;

/// A layered random-ish Clifford circuit: H column + CX ladder, repeated.
fn clifford_layers(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n, n);
    for _ in 0..layers {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_shot");
    for n in [8usize, 12, 16] {
        let circ = clifford_layers(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let init = StateVector::new(circ.num_qubits());
            b.iter(|| run_shot(&circ, &init, &mut rng));
        });
    }
    group.finish();
}

fn bench_density_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_depolarize");
    for n in [4usize, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rho = DensityMatrix::new(n);
            b.iter(|| {
                for q in 0..n {
                    rho.depolarize_1q(q, 0.01);
                }
            });
        });
    }
    group.finish();
}

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_shot");
    for n in [16usize, 64, 256] {
        let circ = clifford_layers(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| Tableau::run(&circ, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_residual");
    for n in [16usize, 64, 256] {
        let ideal = clifford_layers(n, 4);
        let circ = circuit::noise::NoiseModel::standard(0.005).apply(&ideal);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| FrameSimulator::sample_residual(&circ, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_density_matrix,
    bench_tableau,
    bench_frame
);
criterion_main!(benches);
