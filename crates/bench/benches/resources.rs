//! Criterion benches for the resource accounting paths (Tables 1–3 and
//! the §2.5 ledgers).

use compas::cswap::CswapScheme;
use compas::naive::NaiveDistribution;
use compas::resources::{scheme_comparison, teledata_costs, telegate_costs};
use compas::swap_test::CompasProtocol;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tables(c: &mut Criterion) {
    c.bench_function("tables_1_2_3_closed_form", |b| {
        b.iter(|| {
            let t1 = telegate_costs(100);
            let t2 = teledata_costs(100);
            let t3 = scheme_comparison(100, 8);
            (t1.total_depth, t2.total_depth, t3.len())
        });
    });
}

fn bench_ledgers(c: &mut Criterion) {
    let mut group = c.benchmark_group("measured_ledgers");
    group.sample_size(10);
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("naive_distribution", n), &n, |b, &n| {
            b.iter(|| NaiveDistribution::new(n, n).distribution_ledger());
        });
        group.bench_with_input(BenchmarkId::new("compas_protocol", n), &n, |b, &n| {
            b.iter(|| {
                CompasProtocol::new(n, n, CswapScheme::Teledata)
                    .ledger()
                    .raw_bell_pairs()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables, bench_ledgers);
criterion_main!(benches);
