//! Criterion benches for protocol compilation and execution: monolithic
//! vs COMPAS-distributed multi-party SWAP tests.

use compas::cswap::CswapScheme;
use compas::swap_test::{CompasProtocol, MonolithicSwapTest, MonolithicVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::qrand::random_density_matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_compile");
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("compas_teledata", k), &k, |b, &k| {
            b.iter(|| CompasProtocol::new(k, 2, CswapScheme::Teledata));
        });
        group.bench_with_input(BenchmarkId::new("monolithic_fanout", k), &k, |b, &k| {
            b.iter(|| MonolithicSwapTest::new(k, 2, MonolithicVariant::Fanout));
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_estimate_100shots");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let states: Vec<_> = (0..3).map(|_| random_density_matrix(1, &mut rng)).collect();

    let mono = MonolithicSwapTest::new(3, 1, MonolithicVariant::Fanout);
    group.bench_function("monolithic_k3_n1", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| mono.estimate(&states, 100, &mut rng));
    });

    let compas = CompasProtocol::new(3, 1, CswapScheme::Teledata);
    group.bench_function("compas_teledata_k3_n1", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| compas.estimate(&states, 100, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_estimate);
criterion_main!(benches);
