//! Noisy end-to-end runs: gate-level noise applied to fully compiled
//! protocol circuits (not the blackboxed Fig 9b path), verifying the
//! paper's qualitative noise claims survive in the complete pipeline.

use circuit::noise::NoiseModel;
use compas::prelude::*;
use mathkit::matrix::Matrix;
use qsim::qrand::random_pure_state;
use qsim::runner::run_shot;
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the protocol's real-channel circuit under a gate noise model and
/// returns the mean parity sample — the noisy estimate of `Re tr(Πρ)`.
fn noisy_re_estimate(
    proto: &CompasProtocol,
    noise: &NoiseModel,
    states: &[Matrix],
    shots: usize,
    rng: &mut StdRng,
) -> f64 {
    let circ = noise.apply(proto.circuit());
    let n = proto.state_width();
    let order = compas::swap_test::interleaved_order(proto.num_parties());
    // Place state seq[p] on node p's data qubits (mirrors the protocol's
    // internal layout: node stride n+1, state block first).
    let ensembles: Vec<qsim::qrand::PureEnsemble> = states
        .iter()
        .map(qsim::qrand::PureEnsemble::from_density)
        .collect();
    let g = proto.num_parties().div_ceil(2);
    // GHZ cbits are the last g of the register.
    let ghz_cbits: Vec<usize> = (circ.num_cbits() - g..circ.num_cbits()).collect();
    let mut acc = 0.0;
    for _ in 0..shots {
        let groups: Vec<(Vec<mathkit::complex::Complex>, Vec<usize>)> = order
            .iter()
            .enumerate()
            .map(|(p, &i)| {
                let qubits: Vec<usize> = (0..n).map(|l| p * (n + 1) + l).collect();
                (ensembles[i].sample(rng).to_vec(), qubits)
            })
            .collect();
        let initial = StateVector::product_state(circ.num_qubits(), &groups);
        let out = run_shot(&circ, &initial, rng);
        let parity = ghz_cbits.iter().fold(false, |a, &c| a ^ out.cbits[c]);
        acc += if parity { -1.0 } else { 1.0 };
    }
    acc / shots as f64
}

#[test]
fn contrast_decreases_monotonically_with_gate_noise() {
    // tr(ρ²) = 1 for identical pure states; gate noise must wash the
    // parity contrast toward 0, monotonically in p (within noise bars).
    let mut rng = StdRng::seed_from_u64(1);
    let psi = random_pure_state(1, &mut rng);
    let rho = StateVector::from_amplitudes(psi).to_density();
    let states = vec![rho.clone(), rho];
    let proto = CompasProtocol::new(2, 1, CswapScheme::Teledata);

    let est = |p: f64, rng: &mut StdRng| {
        noisy_re_estimate(&proto, &NoiseModel::standard(p), &states, 400, rng)
    };
    let clean = est(0.0, &mut rng);
    let mild = est(0.005, &mut rng);
    let harsh = est(0.05, &mut rng);
    assert!(clean > 0.95, "noiseless contrast {clean}");
    assert!(mild < clean + 0.05 && mild > harsh - 0.05);
    assert!(
        harsh < clean - 0.2,
        "strong noise must visibly reduce contrast: {harsh} vs {clean}"
    );
}

#[test]
fn teledata_keeps_more_contrast_than_telegate_under_noise() {
    // The full-pipeline analogue of the Fig 9b ordering: at equal gate
    // noise the teledata compilation (fewer noisy operations) retains at
    // least as much parity contrast as telegate.
    let mut rng = StdRng::seed_from_u64(2);
    let psi = random_pure_state(1, &mut rng);
    let rho = StateVector::from_amplitudes(psi).to_density();
    let states = vec![rho.clone(), rho];
    let noise = NoiseModel::standard(0.01);

    let td = CompasProtocol::new(2, 1, CswapScheme::Teledata);
    let tg = CompasProtocol::new(2, 1, CswapScheme::Telegate);
    // Average over several batches to tame shot noise.
    let mut td_sum = 0.0;
    let mut tg_sum = 0.0;
    for _ in 0..4 {
        td_sum += noisy_re_estimate(&td, &noise, &states, 300, &mut rng);
        tg_sum += noisy_re_estimate(&tg, &noise, &states, 300, &mut rng);
    }
    assert!(
        td_sum > tg_sum - 0.1,
        "teledata {td_sum} should not trail telegate {tg_sum}"
    );
    // Telegate compiles strictly more gates, hence more noise sites.
    assert!(tg.circuit().gate_count() > td.circuit().gate_count());
}

#[test]
fn measurement_error_alone_also_degrades_contrast() {
    // Readout errors flip GHZ parities directly: a pure p_meas model
    // must reduce contrast even with perfect gates.
    let mut rng = StdRng::seed_from_u64(3);
    let psi = random_pure_state(1, &mut rng);
    let rho = StateVector::from_amplitudes(psi).to_density();
    let states = vec![rho.clone(), rho];
    let proto = CompasProtocol::new(2, 1, CswapScheme::Teledata);
    let meas_only = NoiseModel {
        p_1q: 0.0,
        p_2q: 0.0,
        p_3q: 0.0,
        p_meas: 0.08,
        p_reset: 0.0,
    };
    let noisy = noisy_re_estimate(&proto, &meas_only, &states, 500, &mut rng);
    let clean = noisy_re_estimate(&proto, &NoiseModel::noiseless(), &states, 500, &mut rng);
    assert!(noisy < clean - 0.05, "readout noise: {noisy} vs {clean}");
}
