//! Cross-validation of the two stabilizer backends: the Pauli-frame
//! sampler (used for Table 4 and the Fig 9 noise models) must agree with
//! full noisy tableau simulation on observable statistics.
//!
//! Method: take the Fanout gadget on a basis input, append Z measurements
//! of the data qubits, and run many noisy shots through the exact
//! [`Tableau`]. The ideal outcome is deterministic, so the empirical
//! probability that data qubit `q` comes out flipped must match the
//! probability that the frame-sampled residual has an X/Y component on
//! `q` — the quantity Table 4 is built from.

use circuit::circuit::Circuit;
use circuit::noise::NoiseModel;
use compas::fanout::fanout_gadget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stabilizer::frame::FrameSimulator;
use stabilizer::tableau::Tableau;

/// Builds the noisy fanout gadget plus final data measurements.
/// Returns (noisy circuit without final readout, readout circuit, data qubits).
fn gadget_circuits(m: usize, p: f64) -> (Circuit, Circuit, Vec<usize>) {
    let total = 1 + 2 * m;
    let targets: Vec<usize> = (1..=m).collect();
    let ancillas: Vec<usize> = (1 + m..total).collect();
    let mut ideal = Circuit::new(total, 0);
    fanout_gadget(&mut ideal, 0, &targets, &ancillas);
    let noisy = NoiseModel::standard(p).apply(&ideal);

    // Readout: measure control + targets in Z, with *no* readout error so
    // the comparison isolates the circuit noise.
    let mut with_readout = noisy.clone();
    let base = with_readout.add_cbits(1 + m);
    for (i, q) in std::iter::once(0)
        .chain(targets.iter().copied())
        .enumerate()
    {
        with_readout.push(circuit::circuit::Instruction::Measure {
            qubit: q,
            cbit: base + i,
            basis: circuit::circuit::Basis::Z,
            flip_prob: 0.0,
        });
    }
    let data: Vec<usize> = std::iter::once(0).chain(targets).collect();
    (noisy, with_readout, data)
}

#[test]
fn tableau_flip_rates_match_frame_predictions() {
    let (m, p, shots) = (4usize, 0.01, 30_000usize);
    let (noisy, with_readout, data) = gadget_circuits(m, p);
    let readout_base = with_readout.num_cbits() - (1 + m);

    // Frame path: per-qubit X-component rates of the residual.
    let mut rng = StdRng::seed_from_u64(10);
    let mut frame_flip = vec![0usize; 1 + m];
    for _ in 0..shots {
        let residual = FrameSimulator::sample_residual(&noisy, &mut rng);
        for (i, &q) in data.iter().enumerate() {
            if residual.x_bit(q) {
                frame_flip[i] += 1;
            }
        }
    }

    // Tableau path: actual measured bits vs the ideal (input |0…0⟩:
    // control 0 ⇒ all outputs 0).
    let mut rng = StdRng::seed_from_u64(11);
    let mut tableau_flip = vec![0usize; 1 + m];
    for _ in 0..shots {
        let cbits = Tableau::run(&with_readout, &mut rng).unwrap();
        for (i, flip) in tableau_flip.iter_mut().enumerate() {
            if cbits[readout_base + i] {
                *flip += 1;
            }
        }
    }

    for i in 0..=m {
        let f = frame_flip[i] as f64 / shots as f64;
        let t = tableau_flip[i] as f64 / shots as f64;
        // Binomial 5σ at these rates: ≈ 5·sqrt(0.01/30000) ≈ 0.003.
        assert!(
            (f - t).abs() < 0.004,
            "qubit {i}: frame {f:.4} vs tableau {t:.4}"
        );
    }
}

#[test]
fn both_backends_see_noiseless_circuits_as_perfect() {
    let (m, shots) = (3usize, 200usize);
    let (noisy, with_readout, data) = gadget_circuits(m, 0.0);
    let readout_base = with_readout.num_cbits() - (1 + m);

    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..shots {
        let residual = FrameSimulator::sample_residual(&noisy, &mut rng);
        assert!(data
            .iter()
            .all(|&q| !residual.x_bit(q) && !residual.z_bit(q)));
        let cbits = Tableau::run(&with_readout, &mut rng).unwrap();
        assert!((0..=m).all(|i| !cbits[readout_base + i]));
    }
}

#[test]
fn excited_control_fans_out_in_both_backends() {
    // Input |1⟩ on the control: every target must flip (noiselessly),
    // checked through the tableau; the frame sees the same circuit as
    // identity-residual.
    let m = 4usize;
    let total = 1 + 2 * m;
    let targets: Vec<usize> = (1..=m).collect();
    let ancillas: Vec<usize> = (1 + m..total).collect();
    let mut circ = Circuit::new(total, 0);
    circ.x(0);
    fanout_gadget(&mut circ, 0, &targets, &ancillas);
    let base = circ.add_cbits(m);
    for (i, &t) in targets.iter().enumerate() {
        circ.measure(t, base + i);
    }
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..50 {
        let cbits = Tableau::run(&circ, &mut rng).unwrap();
        assert!((0..m).all(|i| cbits[base + i]), "all targets must flip");
    }
}
