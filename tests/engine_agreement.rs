//! Cross-check of the parallel engine against the sequential qsim path
//! on the teleportation circuit from `simulator_agreement.rs`: the
//! engine must (a) reproduce the naive per-shot-seeded sequential loop
//! **exactly**, and (b) agree with `sample_shots`' single-stream
//! statistics within sampling error — the two paths draw different
//! random numbers but sample the same distribution.

use circuit::circuit::{Circuit, Instruction};
use engine::{shot_rng, BatchRunner, Engine, ShotPlan};
use qsim::runner::{run_shot, sample_shots};
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The noisy teleportation circuit of `simulator_agreement.rs`: |1⟩
/// teleported through a depolarized Bell pair, destination measured.
fn teleportation_circuit() -> Circuit {
    let p_site = 0.3;
    let mut c = Circuit::new(3, 3);
    c.x(0);
    network::teleop::prepare_bell(&mut c, 1, 2);
    c.push(Instruction::Depolarizing {
        qubits: vec![2],
        p: p_site,
    });
    network::teleop::teledata(&mut c, 0, 1, 2, 0, 1);
    c.measure(2, 2);
    c
}

#[test]
fn batch_runner_matches_sequential_per_shot_loop_exactly() {
    let circuit = teleportation_circuit();
    let initial = StateVector::new(3);
    let (shots, root) = (10_000u64, 0xA5A5u64);

    // Sequential reference: qsim's run_shot, one fresh stream per shot.
    let mut expected: HashMap<usize, usize> = HashMap::new();
    for shot in 0..shots {
        let mut rng = shot_rng(root, shot);
        let out = run_shot(&circuit, &initial, &mut rng);
        *expected.entry(out.cbits_as_usize()).or_insert(0) += 1;
    }

    let plan = ShotPlan::new(circuit, initial, shots, root);
    for threads in [1usize, 2, 8] {
        let engine = Engine::with_threads(threads);
        let counts = BatchRunner::new(&engine).run_plans(std::slice::from_ref(&plan));
        assert_eq!(counts[0], expected, "{threads} threads");
    }
}

#[test]
fn engine_agrees_with_sample_shots_statistics() {
    let circuit = teleportation_circuit();
    let initial = StateVector::new(3);
    let shots = 20_000usize;

    let mut rng = StdRng::seed_from_u64(1);
    let sequential = sample_shots(&circuit, &initial, shots, &mut rng);
    let plan = ShotPlan::new(circuit, initial, shots as u64, 2);
    let parallel = Engine::with_threads(4).run_plan(&plan);

    assert_eq!(sequential.values().sum::<usize>(), shots);
    assert_eq!(parallel.values().sum::<usize>(), shots);

    // Same outcome distribution within 5σ binomial error per record.
    let keys: std::collections::HashSet<usize> =
        sequential.keys().chain(parallel.keys()).copied().collect();
    for key in keys {
        let p_seq = *sequential.get(&key).unwrap_or(&0) as f64 / shots as f64;
        let p_par = *parallel.get(&key).unwrap_or(&0) as f64 / shots as f64;
        let sigma = mathkit::stats::binomial_std_err(p_seq.max(p_par), shots).max(1e-4);
        assert!(
            (p_seq - p_par).abs() < 5.0 * sigma,
            "record {key}: sequential {p_seq:.4} vs engine {p_par:.4}"
        );
    }

    // And both must see the exact destination one-rate of the agreement
    // suite: P(1) = 1 − p·2/3 with p = 0.3, i.e. 0.8 on cbit 2.
    let one_rate = |counts: &HashMap<usize, usize>| {
        counts
            .iter()
            .filter(|(k, _)| *k & 0b100 != 0)
            .map(|(_, v)| v)
            .sum::<usize>() as f64
            / shots as f64
    };
    assert!((one_rate(&sequential) - 0.8).abs() < 0.015);
    assert!((one_rate(&parallel) - 0.8).abs() < 0.015);
}

#[test]
fn exact_trace_backend_is_shot_free_in_every_executor_mode() {
    // The exact backend declares itself shot-free: it ignores the shot
    // count and executor entirely instead of pretending to sample.
    use compas::estimator::{ExactTraceBackend, TraceBackend};
    use engine::Executor;
    let mut rng = StdRng::seed_from_u64(3);
    let states: Vec<_> = (0..3)
        .map(|_| qsim::qrand::random_density_matrix(1, &mut rng))
        .collect();
    let backend = ExactTraceBackend::new(3, 1);
    assert!(backend.is_shot_free());
    let seq = backend.estimate_trace(&states, 100, &Executor::sequential(99));
    let par = backend.estimate_trace(&states, 100, &Executor::pooled(Engine::with_threads(4), 7));
    assert_eq!(seq, par, "shot-free backends ignore the executor");
    assert_eq!(seq.shots, 0, "no shots are consumed");
}

#[test]
fn executor_sample_shots_matches_run_plan() {
    use engine::Executor;
    let circuit = teleportation_circuit();
    let initial = StateVector::new(3);
    let exec = Executor::pooled(Engine::with_threads(4), 0xBEEF);
    let counts = exec.sample_shots(&circuit, &initial, 5_000);
    let plan = ShotPlan::new(circuit, initial, 5_000, 0xBEEF);
    assert_eq!(counts, Engine::with_threads(2).run_plan(&plan));
}

#[test]
fn generic_plan_and_backend_router_agree_on_the_stabilizer_path() {
    // The teleportation circuit is Clifford, so the same job runs as a
    // ShotPlan<CliffordState>, through the generic Executor loop, and
    // through the Backend router — all three must tally identically.
    use engine::{Backend, Executor};
    use stabilizer::clifford::CliffordState;

    let circuit = teleportation_circuit();
    assert!(circuit.is_clifford());
    let (shots, root) = (5_000usize, 0xBEEFu64);

    let plan = ShotPlan::new(circuit.clone(), CliffordState::new(3), shots as u64, root);
    let via_plan = Engine::with_threads(4).run_plan(&plan);
    let via_exec = Executor::sequential(root).sample_shots(&circuit, &CliffordState::new(3), shots);
    let via_backend = Backend::Auto
        .sample_shots(&circuit, shots, &Executor::sequential(root))
        .unwrap();
    assert_eq!(via_plan, via_exec);
    assert_eq!(via_plan, via_backend);
    assert_eq!(via_plan.values().sum::<usize>(), shots);

    // And the single-stream qsim primitive samples the same
    // distribution on the same backend.
    let mut rng = StdRng::seed_from_u64(9);
    let single = sample_shots(&circuit, &CliffordState::new(3), shots, &mut rng);
    let one_rate = |counts: &HashMap<usize, usize>| {
        counts
            .iter()
            .filter(|(k, _)| *k & 0b100 != 0)
            .map(|(_, v)| v)
            .sum::<usize>() as f64
            / shots as f64
    };
    assert!((one_rate(&single) - one_rate(&via_plan)).abs() < 0.03);
}
