//! Cross-backend agreement: the same circuit sampled through
//! `engine::Backend` must tell the same story on every representation.
//!
//! Two regimes, per the `SimState` contract:
//!
//! * **Exact** — the stabilizer backend consumes the shot RNG stream in
//!   the same per-instruction pattern as the statevector backend (one
//!   uniform per measurement/reset, identical noise draws), so Clifford
//!   circuits tally **identically** for one root seed, up to the
//!   ≈2⁻⁵³-probability rounding of the statevector's outcome
//!   thresholds. With fixed seeds these tests are deterministic.
//! * **Statistical** — across *different* seeds (or against the exact
//!   density reference, which consumes randomness only when sampling
//!   final records) the backends must agree in distribution.

use circuit::circuit::{Circuit, Instruction};
use circuit::noise::NoiseModel;
use engine::{Backend, Engine, Executor};
use qsim::density::{run_deferred, DensityMatrix};

/// Noiseless teleportation of |1⟩ with full feed-forward, plus final
/// measurement of the receiver — Clifford, with random mid-circuit
/// records driving conditionals.
fn teleport_one() -> Circuit {
    let mut c = Circuit::new(3, 3);
    c.x(0);
    c.h(1).cx(1, 2);
    c.cx(0, 1).h(0);
    c.measure(0, 0).measure(1, 1);
    c.cond_x(2, &[1]).cond_z(2, &[0]);
    c.measure(2, 2);
    c
}

/// A noisy GHZ chain measured in the X basis — Clifford with
/// depolarizing sites and readout-basis rotations.
fn noisy_ghz_x(r: usize, p: f64) -> Circuit {
    let mut c = Circuit::new(r, r);
    c.h(0);
    for q in 1..r {
        c.cx(q - 1, q);
    }
    let mut noisy = NoiseModel::standard(p).apply(&c);
    for q in 0..r {
        noisy.measure_x(q, q);
    }
    noisy
}

#[test]
fn clifford_tallies_identical_on_stabilizer_and_statevector() {
    // Same root seed, same per-instruction stream consumption ⇒ the
    // same records, exactly.
    let circuits = [
        {
            let mut bell = Circuit::new(2, 2);
            bell.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
            bell
        },
        teleport_one(),
        noisy_ghz_x(5, 0.02),
    ];
    for (i, c) in circuits.iter().enumerate() {
        for seed in [1u64, 42, 0xC0FFEE] {
            let exec = Executor::sequential(seed);
            let sv = Backend::StateVector.sample_shots(c, 3_000, &exec).unwrap();
            let stab = Backend::Stabilizer.sample_shots(c, 3_000, &exec).unwrap();
            assert_eq!(sv, stab, "circuit {i}, seed {seed}: tallies diverged");
        }
    }
}

#[test]
fn auto_is_the_stabilizer_path_on_clifford_circuits() {
    let c = noisy_ghz_x(4, 0.01);
    assert_eq!(Backend::Auto.resolve(&c), Backend::Stabilizer);
    let exec = Executor::pooled(Engine::with_threads(4), 9);
    let auto = Backend::Auto.sample_shots(&c, 2_000, &exec).unwrap();
    let stab = Backend::Stabilizer.sample_shots(&c, 2_000, &exec).unwrap();
    assert_eq!(auto, stab);
}

#[test]
fn different_seeds_still_agree_statistically() {
    // GHZ-4 in the X basis: even-parity records only, uniformly over
    // the 8 even-parity patterns (noiseless).
    let c = noisy_ghz_x(4, 0.0);
    let shots = 8_000usize;
    let sv = Backend::StateVector
        .sample_shots(&c, shots, &Executor::sequential(11))
        .unwrap();
    let stab = Backend::Stabilizer
        .sample_shots(&c, shots, &Executor::sequential(222))
        .unwrap();
    for counts in [&sv, &stab] {
        for (&key, _) in counts.iter() {
            let parity = (0..4).fold(false, |acc, q| acc ^ (key >> q & 1 == 1));
            assert!(!parity, "odd-parity GHZ X-basis record {key:04b}");
        }
    }
    // Total-variation distance between the two empirical distributions.
    let tv: f64 = (0..16)
        .map(|k| {
            let a = *sv.get(&k).unwrap_or(&0) as f64 / shots as f64;
            let b = *stab.get(&k).unwrap_or(&0) as f64 / shots as f64;
            (a - b).abs()
        })
        .sum::<f64>()
        / 2.0;
    assert!(tv < 0.05, "total variation {tv} too large");
}

#[test]
fn density_counts_match_statevector_distribution() {
    // A noisy feed-forward circuit within the density backend's
    // record-sampling contract.
    let mut c = Circuit::new(2, 2);
    c.h(0);
    c.push(Instruction::Depolarizing {
        qubits: vec![0],
        p: 0.15,
    });
    c.cx(0, 1);
    c.measure(0, 0);
    c.cond_x(1, &[0]);
    c.measure(1, 1);
    assert!(Backend::Density.supports(&c).is_ok());

    let shots = 20_000usize;
    let dm = Backend::Density
        .sample_shots(&c, shots, &Executor::sequential(5))
        .unwrap();
    let sv = Backend::StateVector
        .sample_shots(&c, shots, &Executor::sequential(6))
        .unwrap();
    for k in 0..4 {
        let a = *dm.get(&k).unwrap_or(&0) as f64 / shots as f64;
        let b = *sv.get(&k).unwrap_or(&0) as f64 / shots as f64;
        assert!((a - b).abs() < 0.02, "record {k}: density {a} vs sv {b}");
    }
}

#[test]
fn density_expectations_match_shot_averaged_statevector() {
    // ⟨Z⟩ on the conditioned target from the exact density evolution vs
    // the statevector backend's shot average.
    let mut c = Circuit::new(2, 1);
    c.h(0);
    c.push(Instruction::Depolarizing {
        qubits: vec![0],
        p: 0.2,
    });
    c.cx(0, 1);
    c.measure(0, 0);
    c.cond_x(1, &[0]);
    c.measure(1, 0); // reuse c0: final record is qubit 1's outcome
                     // (qubit 1 was never measured before, so this stays records-safe
                     // for the statevector; the density path computes the expectation
                     // exactly instead of sampling.)
    let rho = run_deferred(
        &{
            let mut exact = Circuit::new(2, 1);
            exact.h(0);
            exact.push(Instruction::Depolarizing {
                qubits: vec![0],
                p: 0.2,
            });
            exact.cx(0, 1);
            exact.measure(0, 0);
            exact.cond_x(1, &[0]);
            exact
        },
        &DensityMatrix::new(2),
    );
    let p_one_exact = rho.probability_of_one(1);

    let shots = 40_000usize;
    let counts = Backend::StateVector
        .sample_shots(&c, shots, &Executor::sequential(17))
        .unwrap();
    let p_one_sampled = counts
        .iter()
        .filter(|(&k, _)| k & 1 == 1)
        .map(|(_, &v)| v)
        .sum::<usize>() as f64
        / shots as f64;
    assert!(
        (p_one_exact - p_one_sampled).abs() < 0.01,
        "exact {p_one_exact} vs sampled {p_one_sampled}"
    );
}

#[test]
fn backend_errors_are_typed_and_early() {
    // Non-Clifford circuit on the stabilizer backend: typed error, no
    // shot runs, and the probe agrees with the sampler.
    let mut c = Circuit::new(2, 1);
    c.h(0).t(0).cx(0, 1).measure(1, 0);
    let err = Backend::Stabilizer.supports(&c).unwrap_err();
    assert_eq!(err.backend, "stabilizer");
    let sampled = Backend::Stabilizer.sample_shots(&c, 100, &Executor::sequential(1));
    assert_eq!(sampled.unwrap_err(), err);
    // Auto routes the same circuit to the statevector instead.
    assert!(Backend::Auto
        .sample_shots(&c, 100, &Executor::sequential(1))
        .is_ok());
}
