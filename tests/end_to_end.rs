//! End-to-end integration: the full distributed pipeline against exact
//! linear algebra, across protocol variants and input families.

use compas::prelude::*;
use engine::Executor;
use mathkit::matrix::Matrix;
use qsim::qrand::{random_density_matrix, random_pure_state};
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pure_density(n: usize, rng: &mut impl rand::Rng) -> Matrix {
    StateVector::from_amplitudes(random_pure_state(n, rng)).to_density()
}

#[test]
fn all_protocol_variants_agree_on_the_same_trace() {
    let mut rng = StdRng::seed_from_u64(1);
    let states: Vec<Matrix> = (0..3).map(|_| pure_density(1, &mut rng)).collect();
    let exact = exact_multivariate_trace(&states);

    let mono_seq = MonolithicSwapTest::new(3, 1, MonolithicVariant::Sequential);
    let mono_fan = MonolithicSwapTest::new(3, 1, MonolithicVariant::Fanout);
    let compas_td = CompasProtocol::new(3, 1, CswapScheme::Teledata);
    let compas_tg = CompasProtocol::new(3, 1, CswapScheme::Telegate);

    let exec = Executor::sequential(10);
    for (name, est) in [
        (
            "monolithic sequential",
            mono_seq.estimate(&states, 1500, &exec.derive(0)),
        ),
        (
            "monolithic fanout",
            mono_fan.estimate(&states, 1500, &exec.derive(1)),
        ),
        (
            "compas teledata",
            compas_td.estimate(&states, 350, &exec.derive(2)),
        ),
        (
            "compas telegate",
            compas_tg.estimate(&states, 350, &exec.derive(3)),
        ),
    ] {
        assert!(
            est.is_consistent_with(exact, 5.0),
            "{name}: {est:?} vs exact {exact}"
        );
    }
}

#[test]
fn compas_handles_entangled_multi_qubit_states() {
    // Each party holds an *entangled* two-qubit state — exactly the case
    // the naive sliced distribution cannot treat (its per-slice product
    // identity fails), but COMPAS keeps whole states on single QPUs.
    let mut rng = StdRng::seed_from_u64(2);
    let states: Vec<Matrix> = (0..2).map(|_| pure_density(2, &mut rng)).collect();
    let exact = exact_multivariate_trace(&states);
    // Pure-state overlaps are generically not products of slice traces.
    let proto = CompasProtocol::new(2, 2, CswapScheme::Teledata);
    let est = proto.estimate(&states, 250, &Executor::sequential(20));
    assert!(
        est.is_consistent_with(exact, 5.0),
        "{est:?} vs exact {exact}"
    );
}

#[test]
fn purity_of_mixed_state_via_distributed_swap_test() {
    // tr(ρ²) = purity: the k = 2 workhorse.
    let mut rng = StdRng::seed_from_u64(3);
    let rho = random_density_matrix(1, &mut rng);
    let purity = (&rho * &rho).trace().re;
    let proto = CompasProtocol::new(2, 1, CswapScheme::Teledata);
    let est = proto.estimate(&[rho.clone(), rho], 1500, &Executor::sequential(30));
    assert!(
        (est.re - purity).abs() < 5.0 * est.re_std_err,
        "purity {} vs {purity}",
        est.re
    );
    assert!(est.im.abs() < 5.0 * est.im_std_err.max(1e-3));
}

#[test]
fn four_party_distributed_test_with_bell_noise_degrades_gracefully() {
    // With link noise the estimator stays unbiased-ish but drifts toward
    // zero contrast; the noisy estimate must be no *larger* in magnitude
    // than the clean one (beyond noise allowance).
    let mut rng = StdRng::seed_from_u64(4);
    let rho = pure_density(1, &mut rng);
    let states: Vec<Matrix> = (0..4).map(|_| rho.clone()).collect();
    // Identical pure states: tr(ρ⁴) = 1, maximal contrast.
    let clean = CompasProtocol::new(4, 1, CswapScheme::Teledata);
    let noisy = CompasProtocol::with_bell_error(4, 1, CswapScheme::Teledata, 0.15);
    let clean_est = clean.estimate(&states, 150, &Executor::sequential(40));
    let noisy_est = noisy.estimate(&states, 150, &Executor::sequential(41));
    assert!(clean_est.re > 0.9, "clean contrast {}", clean_est.re);
    assert!(
        noisy_est.re < clean_est.re - 0.05,
        "noise must reduce contrast: {} vs {}",
        noisy_est.re,
        clean_est.re
    );
}

#[test]
fn naive_and_compas_agree_on_product_inputs() {
    let mut rng = StdRng::seed_from_u64(5);
    let (k, n) = (3usize, 2usize);
    let slices: Vec<Vec<Matrix>> = (0..k)
        .map(|_| (0..n).map(|_| random_density_matrix(1, &mut rng)).collect())
        .collect();
    let full: Vec<Matrix> = slices
        .iter()
        .map(|row| {
            row.iter()
                .skip(1)
                .fold(row[0].clone(), |acc, m| acc.kron(m))
        })
        .collect();
    let exact = exact_multivariate_trace(&full);

    let naive = NaiveDistribution::new(k, n);
    let naive_est = naive.estimate_sliced(&slices, 1500, &Executor::sequential(50));
    assert!(
        naive_est.is_consistent_with(exact, 6.0),
        "naive {naive_est:?} vs {exact}"
    );

    let compas = CompasProtocol::new(k, n, CswapScheme::Teledata);
    let compas_est = compas.estimate(&full, 120, &Executor::sequential(51));
    assert!(
        compas_est.is_consistent_with(exact, 5.0),
        "compas {compas_est:?} vs {exact}"
    );
}
