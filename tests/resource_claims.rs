//! Integration checks of the paper's headline resource claims, measured
//! on the executable implementation (not just the closed forms).

use compas::prelude::*;
use network::prelude::*;

#[test]
fn headline_claim_constant_depth_and_linear_bell_pairs() {
    // "COMPAS adds only a constant depth overhead and consumes Bell pairs
    //  at a rate linear in circuit width" (abstract).
    let depth = |k: usize, n: usize| {
        CompasProtocol::new(k, n, CswapScheme::Teledata)
            .circuit()
            .depth() as i64
    };
    let bells = |k: usize, n: usize| {
        CompasProtocol::new(k, n, CswapScheme::Teledata)
            .ledger()
            .bell_pairs()
    };
    // Depth flat in both axes (±3 moments of scheduling jitter).
    assert!((depth(4, 4) - depth(10, 4)).abs() <= 3);
    assert!((depth(4, 4) - depth(4, 10)).abs() <= 3);
    // Bell pairs linear in n at fixed k: doubling n roughly doubles pairs.
    let (b4, b8) = (bells(4, 4) as f64, bells(4, 8) as f64);
    assert!(b8 / b4 > 1.7 && b8 / b4 < 2.3, "{b4} -> {b8}");
    // And linear in k at fixed n.
    let (bk4, bk8) = (bells(4, 4) as f64, bells(8, 4) as f64);
    assert!(bk8 / bk4 > 1.8 && bk8 / bk4 < 2.8, "{bk4} -> {bk8}");
}

#[test]
fn ghz_width_is_ceil_k_over_2_for_all_k() {
    // Fig 2d: COMPAS keeps GHZ width ⌈k/2⌉ *and* constant depth, unlike
    // Fig 2b (depth 2n) and Fig 2c (GHZ width ⌈k/2⌉·n).
    for k in 2..=9 {
        let (r1, r2) = cswap_schedule(k);
        let controls: std::collections::HashSet<usize> =
            r1.iter().chain(&r2).map(|op| op.control).collect();
        assert_eq!(controls.len(), k.div_ceil(2), "k={k}");
    }
}

#[test]
fn measured_per_qpu_bell_load_tracks_tables_1_and_2() {
    // Tables 1–2 count Bell pairs per QPU: 2+6n telegate, 2+4n teledata
    // (GHZ links + two CSWAP rounds). Our measured per-QPU load counts
    // each pair at both endpoints; an interior control QPU participates
    // in two CSWAPs (one per round) plus its GHZ links, so its load must
    // match the tables' per-round structure: 3n per CSWAP telegate,
    // 2n teledata, +GHZ.
    for n in [1usize, 2, 4] {
        let telegate = CompasProtocol::new(5, n, CswapScheme::Telegate);
        let teledata = CompasProtocol::new(5, n, CswapScheme::Teledata);
        let tg = telegate.ledger().max_bell_pairs_per_node();
        let td = teledata.ledger().max_bell_pairs_per_node();
        // Busiest QPU: 2 CSWAPs as Alice (+ possibly Bob work + GHZ).
        assert!(
            tg <= 6 * n + 4 && tg >= 6 * n,
            "telegate n={n}: per-QPU load {tg} vs table 2+6n={}",
            2 + 6 * n
        );
        assert!(
            td <= 4 * n + 4 && td >= 4 * n,
            "teledata n={n}: per-QPU load {td} vs table 2+4n={}",
            2 + 4 * n
        );
        assert!(td < tg, "teledata must consume fewer Bell pairs per QPU");
    }
}

#[test]
fn teledata_is_the_recommended_scheme() {
    // Table 3: teledata wins on Bell pairs and memory for every n.
    for n in 1..=20 {
        let rows = scheme_comparison(n, 4);
        let telegate = &rows[0];
        let teledata = &rows[1];
        assert!(teledata.bell_pairs < telegate.bell_pairs);
        assert!(teledata.memory_estimate < telegate.memory_estimate);
        assert!(teledata.depth < telegate.depth);
    }
}

#[test]
fn entanglement_swapping_cost_matches_distance() {
    // §2.5: a Bell pair between QPUs d hops apart costs d raw pairs.
    for d in 1..=5 {
        let mut m = DistributedMachine::new(6, 1, Topology::Line);
        m.create_bell(0, d);
        assert_eq!(m.ledger().bell_pairs(), 1);
        assert_eq!(m.ledger().raw_bell_pairs(), d);
    }
}

#[test]
fn communication_only_during_the_test_not_state_prep() {
    // §3.2: "communication between QPUs is only required during the
    // multi-party SWAP test, and not during the preparation of ρ".
    // State preparation is entirely local: a fresh protocol has consumed
    // nothing before estimate() is called beyond the compiled circuit.
    let proto = CompasProtocol::new(4, 2, CswapScheme::Teledata);
    // All Bell pairs in the ledger belong to GHZ prep + CSWAPs:
    let expected = (4 - 1) * 2 * 2 + (2 - 1); // (k−1)·2n + (⌈k/2⌉−1)
    assert_eq!(proto.ledger().bell_pairs(), expected);
}
