//! Cross-simulator agreement: the statevector trajectory sampler and the
//! exact deferred-measurement density-matrix evolution must produce the
//! same statistics on dynamic circuits with noise — the foundation under
//! every noise figure in the reproduction.

use circuit::circuit::{Circuit, Instruction};
use mathkit::matrix::TraceKeep;
use qsim::density::{run_deferred, DensityMatrix};
use qsim::runner::run_shot;
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Empirical outcome distribution of `cbit` over trajectory shots.
fn sampled_one_rate(circ: &Circuit, cbit: usize, shots: usize, rng: &mut StdRng) -> f64 {
    let mut ones = 0usize;
    for _ in 0..shots {
        let out = run_shot(circ, &StateVector::new(circ.num_qubits()), rng);
        if out.cbits[cbit] {
            ones += 1;
        }
    }
    ones as f64 / shots as f64
}

#[test]
fn teleportation_with_depolarized_link_agrees_across_simulators() {
    // |1⟩ teleported through a noisy Bell pair, then measured: the final
    // one-rate from trajectories must match the exact density matrix.
    let p_site = 0.3;
    let mut c = Circuit::new(3, 3);
    c.x(0);
    network::teleop::prepare_bell(&mut c, 1, 2);
    c.push(Instruction::Depolarizing {
        qubits: vec![2],
        p: p_site,
    });
    network::teleop::teledata(&mut c, 0, 1, 2, 0, 1);
    c.measure(2, 2);

    // Exact: P(1) on the destination.
    let rho = run_deferred(&c, &DensityMatrix::new(3));
    let exact_p1 = rho.probability_of_one(2);

    let mut rng = StdRng::seed_from_u64(1);
    let sampled = sampled_one_rate(&c, 2, 20_000, &mut rng);
    assert!(
        (sampled - exact_p1).abs() < 0.015,
        "sampled {sampled} vs exact {exact_p1}"
    );
    // Sanity: a uniform non-identity Pauli flips the bit in 2 of 3 cases.
    let expected = 1.0 - p_site * 2.0 / 3.0;
    assert!((exact_p1 - expected).abs() < 1e-10);
}

#[test]
fn noisy_ghz_parity_agrees_across_simulators() {
    // Three-qubit GHZ with a depolarizing site, X-basis readout: the
    // parity expectation from trajectories must match the exact value.
    let mut c = Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2);
    c.push(Instruction::Depolarizing {
        qubits: vec![1],
        p: 0.2,
    });
    for q in 0..3 {
        c.push(Instruction::Measure {
            qubit: q,
            cbit: q,
            basis: circuit::circuit::Basis::X,
            flip_prob: 0.0,
        });
    }

    // Exact parity: ⟨X⊗X⊗X⟩ of the noisy state. Build the state without
    // the measurements, then take the expectation.
    let mut prep = Circuit::new(3, 0);
    prep.h(0).cx(0, 1).cx(1, 2);
    prep.push(Instruction::Depolarizing {
        qubits: vec![1],
        p: 0.2,
    });
    let rho = run_deferred(&prep, &DensityMatrix::new(3));
    let xxx = {
        let x = circuit::gate::Gate::X(0).unitary();
        x.kron(&x).kron(&x)
    };
    let exact = rho.expectation(&xxx).re;

    let mut rng = StdRng::seed_from_u64(2);
    let shots = 20_000;
    let mut acc = 0.0;
    for _ in 0..shots {
        let out = run_shot(&c, &StateVector::new(3), &mut rng);
        let parity = out.cbits.iter().fold(false, |a, &b| a ^ b);
        acc += if parity { -1.0 } else { 1.0 };
    }
    let sampled = acc / shots as f64;
    assert!(
        (sampled - exact).abs() < 0.02,
        "sampled {sampled} vs exact {exact}"
    );
}

#[test]
fn reset_and_reuse_agree_across_simulators() {
    // Measure-and-reset reuse: a qubit carries |+⟩, is measured, reset,
    // re-entangled. Compare the joint distribution of both cbits.
    let mut c = Circuit::new(2, 2);
    c.h(0);
    c.measure(0, 0);
    c.reset(0);
    c.h(0).cx(0, 1);
    c.measure(1, 1);

    let mut rng = StdRng::seed_from_u64(3);
    let shots = 20_000;
    let mut counts = [0usize; 4];
    for _ in 0..shots {
        let out = run_shot(&c, &StateVector::new(2), &mut rng);
        counts[(out.cbits[0] as usize) << 1 | out.cbits[1] as usize] += 1;
    }
    // Both bits are fair and independent coins.
    for (i, &n) in counts.iter().enumerate() {
        let f = n as f64 / shots as f64;
        assert!((f - 0.25).abs() < 0.02, "pattern {i}: {f}");
    }
}

#[test]
fn conditional_corrections_match_between_paths() {
    // A parity-conditioned correction with three source bits: the exact
    // deferred path and trajectories must agree on the target marginal.
    let mut c = Circuit::new(4, 4);
    for q in 0..3 {
        c.h(q);
        c.measure(q, q);
    }
    c.push(Instruction::Conditional {
        gate: circuit::gate::Gate::X(3),
        parity_of: vec![0, 1, 2],
    });
    c.measure(3, 3);

    let rho = run_deferred(&c, &DensityMatrix::new(4));
    let exact_p1 = rho.probability_of_one(3);
    assert!(
        (exact_p1 - 0.5).abs() < 1e-10,
        "three fair bits ⇒ odd half the time"
    );

    let mut rng = StdRng::seed_from_u64(4);
    let sampled = sampled_one_rate(&c, 3, 20_000, &mut rng);
    assert!((sampled - 0.5).abs() < 0.015);
}

#[test]
fn trajectory_average_reconstructs_reduced_density_matrix() {
    // Average |ψ⟩⟨ψ| over trajectories of a noisy circuit and compare
    // with the exact density matrix, entrywise.
    let mut c = Circuit::new(2, 0);
    c.h(0).cx(0, 1);
    c.push(Instruction::Depolarizing {
        qubits: vec![0, 1],
        p: 0.25,
    });

    let exact = run_deferred(&c, &DensityMatrix::new(2));
    let mut rng = StdRng::seed_from_u64(5);
    let shots = 30_000;
    let mut acc = mathkit::matrix::Matrix::zeros(4, 4);
    for _ in 0..shots {
        let out = run_shot(&c, &StateVector::new(2), &mut rng);
        acc = &acc + &out.state.to_density();
    }
    let avg = acc.scale(mathkit::complex::c64(1.0 / shots as f64, 0.0));
    let diff = avg.max_abs_diff(exact.matrix());
    assert!(diff < 0.02, "max entry difference {diff}");
    // Also check a derived quantity: purity must drop below 1.
    let purity = (exact.matrix() * exact.matrix()).trace().re;
    assert!(purity < 0.95);
    let _ = exact.matrix().partial_trace(2, 2, TraceKeep::A);
}
