//! Property-based tests (proptest) on the core invariants the paper's
//! constructions rely on.

use circuit::circuit::Circuit;
use compas::prelude::*;
use mathkit::complex::c64;
use mathkit::poly::Polynomial;
use proptest::prelude::*;
use qsim::runner::run_shot;
use qsim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stabilizer::pauli::PauliString;
use stabilizer::tableau::Tableau;

/// A normalized single-qubit state from two free complex parameters.
fn qubit_state(re0: f64, im0: f64, re1: f64, im1: f64) -> Vec<mathkit::complex::Complex> {
    let a = c64(re0, im0);
    let b = c64(re1 + 0.1, im1); // avoid the all-zero corner
    let norm = (a.norm_sqr() + b.norm_sqr()).sqrt();
    vec![a.scale(1.0 / norm), b.scale(1.0 / norm)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Teleportation is exact for arbitrary qubit states (Fig 1a).
    #[test]
    fn teleportation_preserves_any_state(
        re0 in -1.0f64..1.0, im0 in -1.0f64..1.0,
        re1 in -1.0f64..1.0, im1 in -1.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let amps = qubit_state(re0, im0, re1, im1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(3, 2);
        network::teleop::prepare_bell(&mut c, 1, 2);
        network::teleop::teledata(&mut c, 0, 1, 2, 0, 1);
        let initial = StateVector::product_state(3, &[(amps.clone(), vec![0])]);
        let out = run_shot(&c, &initial, &mut rng);
        let rho = out.state.to_density();
        let reduced = rho.partial_trace(4, 2, mathkit::matrix::TraceKeep::B);
        let fid: f64 = reduced
            .mul_vec(&amps)
            .iter()
            .zip(&amps)
            .map(|(x, y)| (y.conj() * *x).re)
            .sum();
        prop_assert!((fid - 1.0).abs() < 1e-9, "fidelity {fid}");
    }

    /// The exact multivariate trace is invariant under cyclic rotation
    /// of its arguments (the identity behind Eq. 3).
    #[test]
    fn multivariate_trace_is_cyclic(seed in 0u64..10_000, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let states: Vec<_> = (0..k)
            .map(|_| qsim::qrand::random_density_matrix(1, &mut rng))
            .collect();
        let t1 = exact_multivariate_trace(&states);
        let mut rotated = states.clone();
        rotated.rotate_left(1);
        let t2 = exact_multivariate_trace(&rotated);
        prop_assert!((t1 - t2).abs() < 1e-10);
    }

    /// |tr(ρ₁…ρ_k)| ≤ 1 for density matrices (the quantity the paper
    /// estimates lives in the unit disc).
    #[test]
    fn multivariate_trace_is_bounded(seed in 0u64..10_000, k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let states: Vec<_> = (0..k)
            .map(|_| qsim::qrand::random_density_matrix(1, &mut rng))
            .collect();
        prop_assert!(exact_multivariate_trace(&states).abs() <= 1.0 + 1e-10);
    }

    /// Phase-free Pauli strings form an abelian group under
    /// multiplication: self-inverse, commutative, associative.
    #[test]
    fn pauli_strings_form_a_group(a in "[IXYZ]{1,8}", b in "[IXYZ]{1,8}") {
        let n = a.len().min(b.len());
        let pa: PauliString = a[..n].parse().unwrap();
        let pb: PauliString = b[..n].parse().unwrap();
        prop_assert!(pa.mul(&pa).is_identity());
        prop_assert_eq!(pa.mul(&pb), pb.mul(&pa));
        let pc = pa.mul(&pb);
        prop_assert_eq!(pc.mul(&pb), pa);
    }

    /// Commutation is symmetric and respects products:
    /// if P commutes with both A and B it commutes with A·B.
    #[test]
    fn pauli_commutation_respects_products(
        a in "[IXYZ]{4}", b in "[IXYZ]{4}", p in "[IXYZ]{4}",
    ) {
        let pa: PauliString = a.parse().unwrap();
        let pb: PauliString = b.parse().unwrap();
        let pp: PauliString = p.parse().unwrap();
        prop_assert_eq!(pa.commutes_with(&pb), pb.commutes_with(&pa));
        let prod = pa.mul(&pb);
        let expected = pp.commutes_with(&pa) == pp.commutes_with(&pb);
        prop_assert_eq!(pp.commutes_with(&prod), expected);
    }

    /// Newton–Girard round-trip: eigenvalues → power sums → eigenvalues.
    #[test]
    fn newton_girard_roundtrip(l1 in 0.05f64..1.0, l2 in 0.05f64..1.0) {
        let z = l1 + l2;
        let (l1, l2) = (l1 / z, l2 / z);
        let power_sums: Vec<f64> = (1..=2)
            .map(|m| l1.powi(m) + l2.powi(m))
            .collect();
        let mut recovered = mathkit::poly::spectrum_from_power_sums(&power_sums);
        recovered.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut want = [l1, l2];
        want.sort_by(|a, b| b.partial_cmp(a).unwrap());
        prop_assert!((recovered[0] - want[0]).abs() < 1e-7);
        prop_assert!((recovered[1] - want[1]).abs() < 1e-7);
    }

    /// Polynomial factorization multiplies back to the target on a grid.
    #[test]
    fn polynomial_factorization_roundtrip(
        r1 in 0.2f64..3.0, r2 in 0.2f64..3.0, r3 in 0.2f64..3.0, k in 2usize..4,
    ) {
        let poly = Polynomial::from_roots(&[
            c64(-r1, 0.0), c64(-r2, 0.0), c64(-r3, 0.0),
        ]);
        let factors = apps::qsp::factor_polynomial(&poly, k);
        let product = factors.iter().fold(Polynomial::one(), |acc, f| acc.mul(f));
        for x in [0.0f64, 0.25, 0.5, 1.0] {
            let want = poly.eval_real(x).re;
            let got = product.eval_real(x).re;
            prop_assert!((want - got).abs() < 1e-6 * want.abs().max(1.0));
        }
    }

    /// Tableau and statevector agree on deterministic measurements of
    /// random Clifford circuits.
    #[test]
    fn tableau_matches_statevector_on_random_cliffords(
        seed in 0u64..5000, gates in 4usize..24,
    ) {
        let n = 4usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut circ = Circuit::new(n, 0);
        use rand::Rng as _;
        for _ in 0..gates {
            match rng.random_range(0..4) {
                0 => { circ.h(rng.random_range(0..n)); }
                1 => { circ.s(rng.random_range(0..n)); }
                2 => {
                    let a = rng.random_range(0..n);
                    let b = (a + rng.random_range(1..n)) % n;
                    circ.cx(a, b);
                }
                _ => { circ.x(rng.random_range(0..n)); }
            }
        }
        // Statevector probabilities.
        let sv = qsim::runner::run_unitary(&circ, &StateVector::new(n));
        // Tableau: replay gates, check each qubit's determinism.
        let mut t = Tableau::new(n);
        for instr in circ.instructions() {
            if let circuit::circuit::Instruction::Gate(g) = instr {
                t.apply_gate(g).unwrap();
            }
        }
        for q in 0..n {
            let p1 = sv.probability_of_one(q);
            if t.is_deterministic_z(q) {
                prop_assert!(!(1e-9..=1.0 - 1e-9).contains(&p1), "q{q}: p1={p1}");
            } else {
                prop_assert!((p1 - 0.5).abs() < 1e-9, "q{q}: p1={p1}");
            }
        }
    }

    /// The fanout gadget equals the CNOT cascade on random basis inputs
    /// (complementing the amplitude-level unit tests).
    #[test]
    fn fanout_gadget_on_basis_states(input in 0usize..32, seed in 0u64..500) {
        let m = 4usize;
        let total = 1 + 2 * m;
        let targets: Vec<usize> = (1..=m).collect();
        let ancillas: Vec<usize> = (1 + m..total).collect();
        let mut gadget = Circuit::new(total, 0);
        fanout_gadget(&mut gadget, 0, &targets, &ancillas);
        let mut rng = StdRng::seed_from_u64(seed);
        // Embed the 5 data bits, ancillas zero.
        let initial = StateVector::basis_state(total, input << m);
        let out = run_shot(&gadget, &initial, &mut rng);
        // Expected: control bit XORed into every target.
        let control = (input >> m) & 1;
        let mut want = input;
        if control == 1 {
            want ^= (1 << m) - 1; // flip the m target bits
        }
        let got = out.state.sample_bits(&mut rng) >> m;
        prop_assert_eq!(got, want);
    }

    /// CSWAP schedules always compose to a one-step cyclic shift.
    #[test]
    fn schedule_is_cyclic_for_all_k(k in 2usize..16) {
        let perm = schedule_permutation(k);
        let backward: Vec<usize> = (0..k).map(|i| (i + k - 1) % k).collect();
        let forward: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
        prop_assert!(perm == backward || perm == forward, "k={k}: {perm:?}");
    }

    /// Estimator means live in [−1, 1] and std errors shrink as 1/√N.
    #[test]
    fn estimator_basic_statistics(flips in proptest::collection::vec(any::<bool>(), 50..200)) {
        let mut est = TraceEstimator::new();
        for &f in &flips {
            est.record_re(f);
            est.record_im(!f);
        }
        let e = est.finish();
        prop_assert!(e.re >= -1.0 && e.re <= 1.0);
        prop_assert!(e.im >= -1.0 && e.im <= 1.0);
        prop_assert!((e.re + e.im).abs() < 1e-9); // complementary channels
    }
}
