//! Distributed parallel QSP (paper §6.4): estimate tr(P(ρ)) for a
//! degree-d polynomial by factoring P into k degree-(d/k) parts and
//! multiplying them with one k-party SWAP test — trading circuit depth
//! for width across QPUs.
//!
//! Run with: `cargo run --release --example parallel_qsp`

use apps::prelude::*;
use compas::prelude::*;
use engine::Executor;
use mathkit::cheb::ChebyshevApprox;
use qsim::qrand::random_density_matrix;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let rho = random_density_matrix(1, &mut rng);

    // Target: tr(e^{-2ρ}) via a degree-6 Chebyshev approximation of
    // e^{-2x}, factored into k = 3 parts of degree ≤ 2.
    let cheb = ChebyshevApprox::fit(|x| (-2.0 * x).exp(), 6);
    let target = cheb.to_polynomial();
    let qsp = ParallelQsp::new(&target, 3).expect("degree-6 target factors");
    println!(
        "degree {} polynomial factored into {} parts, max factor degree {} (depth O(d/k))",
        target.degree().unwrap(),
        qsp.factors().len(),
        qsp.max_factor_degree()
    );

    let exact = {
        let eig = mathkit::eigen::eigh(&rho);
        eig.values.iter().map(|&l| (-2.0 * l).exp()).sum::<f64>()
    };
    let via_poly = poly_trace_exact(&rho, &target);

    // Exact backend isolates the factorization error from shot noise…
    let exec = Executor::sequential(11);
    let exact_backend = ExactTraceBackend::new(3, 1);
    let distributed_exact = qsp.estimate(&rho, &exact_backend, 1, &exec).unwrap();

    // …and the sampled monolithic 3-party test adds the protocol.
    let sampled_backend = MonolithicSwapTest::new(3, 1, MonolithicVariant::Fanout);
    let sampled = qsp.estimate(&rho, &sampled_backend, 6000, &exec).unwrap();

    println!("tr(e^(-2 rho))      exact:        {exact:.5}");
    println!("tr(P(rho))          polynomial:   {via_poly:.5}");
    println!("parallel QSP        exact trace:  {distributed_exact:.5}");
    println!("parallel QSP        sampled:      {sampled:.5}");
    assert!((distributed_exact - via_poly).abs() < 1e-6);
    assert!((sampled - via_poly).abs() < 0.15);

    // The paper's §7 extension: the same trace as a *sum* of SWAP tests
    // (one per monomial order) — no factor-positivity requirement.
    let b2 = ExactTraceBackend::new(2, 1);
    let b3 = ExactTraceBackend::new(3, 1);
    let b4 = ExactTraceBackend::new(4, 1);
    let b5 = ExactTraceBackend::new(5, 1);
    let b6 = ExactTraceBackend::new(6, 1);
    let backends: Vec<&dyn TraceBackend> = vec![&b2, &b3, &b4, &b5, &b6];
    let by_sums = estimate_poly_trace_by_sums(&rho, &target, &backends, 1, &exec);
    println!("sum-of-SWAP-tests   exact trace:  {by_sums:.5}");
    assert!((by_sums - via_poly).abs() < 1e-6);
}
