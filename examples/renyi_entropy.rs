//! Rényi-entropy estimation (paper §6.1): S_m(ρ) = log tr(ρᵐ)/(1−m)
//! from m-party SWAP tests, distributed across m QPUs.
//!
//! Run with: `cargo run --release --example renyi_entropy`

use apps::prelude::*;
use compas::prelude::*;
use engine::Executor;
use qsim::qrand::random_density_matrix_of_rank;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    // A rank-2 single-qubit state: entropy strictly between 0 and ln 2.
    let rho = random_density_matrix_of_rank(1, 2, &mut rng);

    println!("order |   exact S_m | estimated S_m | backend");
    for order in [2usize, 3] {
        let exact = renyi_entropy_exact(&rho, order);

        // Distributed estimate: an order-party COMPAS protocol.
        let protocol = CompasProtocol::new(order, 1, CswapScheme::Teledata);
        let est =
            estimate_renyi_entropy(&protocol, &rho, 1500, &Executor::sequential(order as u64));
        println!(
            "  {order}   |   {exact:.4}    |    {:.4}     | compas teledata (k={order})",
            est.entropy
        );
        assert!(
            (est.entropy - exact).abs() < 0.25,
            "entropy estimate should be close: {} vs {exact}",
            est.entropy
        );
    }

    // Monolithic reference at higher order.
    let mono = MonolithicSwapTest::new(4, 1, MonolithicVariant::Fanout);
    let est = estimate_renyi_entropy(&mono, &rho, 3000, &Executor::sequential(4));
    println!(
        "  4   |   {:.4}    |    {:.4}     | monolithic fanout",
        renyi_entropy_exact(&rho, 4),
        est.entropy
    );
}
