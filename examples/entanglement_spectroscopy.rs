//! Entanglement spectroscopy (paper §6.2): recover the spectrum of a
//! reduced state — the entanglement Hamiltonian levels — from power
//! traces tr(ρᵐ) measured by multi-party SWAP tests plus the
//! Newton–Girard identities.
//!
//! Run with: `cargo run --release --example entanglement_spectroscopy`

use apps::prelude::*;
use compas::prelude::*;
use engine::Executor;
use mathkit::matrix::TraceKeep;
use qsim::statevector::StateVector;

fn main() {
    // A partially entangled two-qubit pure state; its one-qubit reduction
    // has eigenvalues (cos²θ, sin²θ).
    let theta = 0.6f64;
    let amps = vec![
        mathkit::complex::c64(theta.cos(), 0.0),
        mathkit::complex::Complex::ZERO,
        mathkit::complex::Complex::ZERO,
        mathkit::complex::c64(theta.sin(), 0.0),
    ];
    let full = StateVector::from_amplitudes(amps).to_density();
    let rho = full.partial_trace(2, 2, TraceKeep::A);

    // Measure tr(ρ²) with a distributed 2-party test (the standard SWAP
    // test as the k = 2 special case of COMPAS).
    let b2 = CompasProtocol::new(2, 1, CswapScheme::Teledata);
    let backends: Vec<&dyn TraceBackend> = vec![&b2];
    let result = estimate_spectrum(&backends, &rho, 4000, &Executor::sequential(5));

    let exact = [theta.cos().powi(2), theta.sin().powi(2)];
    println!("power traces measured: {:?}", result.power_traces);
    println!("recovered eigenvalues: {:?}", result.eigenvalues);
    println!("exact eigenvalues:     {exact:?}");
    println!(
        "entanglement spectrum (-ln lambda): {:?}",
        result.entanglement_spectrum
    );
    let err = spectrum_error(&result.eigenvalues, &exact);
    println!("max eigenvalue error: {err:.4}");
    assert!(err < 0.1, "spectrum recovery error too large: {err}");

    // ---- A physical scenario: half-chain entanglement spectrum of the
    // critical transverse-field Ising ground state ----
    let chain = IsingChain::new(4, 1.0, 1.0);
    let half = chain.ground_state_reduction(2);
    let exact_traces = exact_power_traces(&half, 4);
    // Each power trace is one distributed m-party SWAP test on 2-qubit
    // states; here we use monolithic backends for speed.
    let b2 = MonolithicSwapTest::new(2, 2, MonolithicVariant::Fanout);
    let b3 = MonolithicSwapTest::new(3, 2, MonolithicVariant::Fanout);
    let backends2: Vec<&dyn TraceBackend> = vec![&b2, &b3];
    let result = estimate_spectrum(&backends2, &half, 1500, &Executor::sequential(6));
    println!("\ncritical TFIM half-chain (4 sites):");
    println!("  exact power traces:    {exact_traces:?}");
    println!("  measured power traces: {:?}", result.power_traces);
    println!(
        "  entanglement spectrum: {:?}",
        result.entanglement_spectrum
    );
    // The dominant Schmidt weight must be recovered within sampling error.
    let exact_eigs = {
        let mut v = mathkit::eigen::eigh(&half).values;
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        v
    };
    assert!((result.eigenvalues[0] - exact_eigs[0]).abs() < 0.12);
}
