//! Noise sweep (paper §5): regenerate small versions of the Fig 9
//! analyses from the library API — GHZ fidelity, CSWAP classical
//! fidelity, and the composed protocol estimate.
//!
//! Run with: `cargo run --release --example noise_sweep`

use analysis::prelude::*;
use compas::cswap::CswapScheme;
use engine::Executor;
use rand::SeedableRng;

fn main() {
    // One root context; every sub-experiment runs under a derived child.
    let exec = Executor::sequential(1);
    let mut children = 0u64;
    let mut child = || {
        children += 1;
        exec.derive(children)
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    println!("GHZ fidelity vs parties (Fig 9a, 20k frame shots):");
    for p in [0.001, 0.005] {
        for r in [4usize, 8, 12] {
            let f = ghz_fidelity_sampled(&child(), r, p, 20_000);
            println!("  p2q = {p}: r = {r:>2} -> F = {f:.4}");
        }
    }

    println!("\nCSWAP classical fidelity vs width (Fig 9b):");
    for scheme in [CswapScheme::Teledata, CswapScheme::Telegate] {
        for n in [1usize, 3, 5] {
            let model = CswapNoiseModel::characterize(&child(), n, 0.003, 20_000);
            let inputs = fig9b_inputs(n, &mut rng);
            let f = cswap_classical_fidelity(&child(), scheme, &model, &inputs, 50);
            println!("  {scheme}: n = {n} -> F = {f:.4}");
        }
    }

    println!("\nOverall estimate (Fig 9c composition):");
    let p_ghz = 1.0 - ghz_fidelity_sampled(&child(), 4, 0.003, 20_000);
    let model = CswapNoiseModel::characterize(&child(), 3, 0.003, 20_000);
    let inputs = fig9b_inputs(3, &mut rng);
    let p_cswap =
        1.0 - cswap_classical_fidelity(&child(), CswapScheme::Teledata, &model, &inputs, 50);
    for k in [8usize, 12] {
        println!(
            "  k = {k:>2}, n = 3: F >= {:.4}",
            overall_fidelity(p_ghz, p_cswap, k)
        );
    }
}
