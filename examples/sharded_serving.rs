//! The sharded serving topology, end to end in one process: spawn two
//! `service` workers and a `shard` coordinator on ephemeral ports,
//! submit a job over loopback TCP, and verify the sharding guarantee —
//! the coordinator partitions the global shot range across workers,
//! merges their tallies, and the served counts are bit-identical to a
//! direct `Backend::sample_shots` call with the same root seed. Then
//! kill one worker and watch the coordinator re-dispatch its range to
//! the survivor without changing a single byte of the answer.
//!
//! Run with: `cargo run --release --example sharded_serving`

use circuit::circuit::{Circuit, Instruction};
use circuit::qasm::to_qasm3;
use engine::{Backend, Executor};
use service::{Request, Response, RunRequest, Service, ServiceConfig};
use shard::{Coordinator, CoordinatorConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn round_trip(addr: std::net::SocketAddr, request: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(request.to_line().as_bytes())
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    print!("<- {line}");
    Response::from_line(&line).expect("decode")
}

fn main() {
    // A noisy GHZ chain: stochastic noise makes per-shot RNG streams
    // matter, so byte-identity across topologies is a real statement.
    let mut circuit = Circuit::new(6, 6);
    circuit.h(0);
    for q in 1..6 {
        circuit.cx(q - 1, q);
        circuit.push(Instruction::Depolarizing {
            qubits: vec![q - 1, q],
            p: 0.01,
        });
    }
    for q in 0..6 {
        circuit.measure(q, q);
    }
    let (shots, seed) = (4_000u64, 7u64);

    // Two single-machine workers...
    let mut workers: Vec<_> = (0..2)
        .map(|_| Service::spawn(ServiceConfig::default()).expect("spawn worker"))
        .collect();
    // ...and a coordinator that owns no simulator at all: it shards
    // each job's shot range `0..shots` across the workers with the
    // wire protocol's `shot_range` extension and merges the tallies.
    let coordinator = Coordinator::spawn(CoordinatorConfig {
        workers: workers.iter().map(|w| w.addr().to_string()).collect(),
        ..CoordinatorConfig::default()
    })
    .expect("spawn coordinator");
    println!(
        "coordinator on {}, sharding over 2 workers",
        coordinator.addr()
    );

    let request = Request::run(
        Some("demo".into()),
        RunRequest::new(to_qasm3(&circuit), shots, seed, "auto"),
    );
    let sharded = round_trip(coordinator.addr(), &request);

    // The sharding guarantee: the merged tallies are exactly the counts
    // a local, offline, single-machine run produces.
    let direct = Backend::Auto
        .sample_shots(&circuit, shots as usize, &Executor::sequential(seed))
        .expect("direct sampling");
    match &sharded {
        Response::Ok { tallies, .. } => {
            assert_eq!(tallies, &direct, "sharded response diverged");
            println!("sharded over 2 workers: matches Backend::sample_shots ✓");
        }
        other => panic!("unexpected response {other:?}"),
    }
    for row in coordinator.worker_rows() {
        println!(
            "worker {}: jobs={} redispatched={} alive={}",
            row.addr, row.jobs, row.redispatched, row.alive
        );
    }

    // Chaos: kill one worker, submit a fresh job (different seed, so
    // nothing comes from the cache). The coordinator notices the death
    // at dispatch time, re-routes the lost range to the survivor, and
    // the answer is still bit-identical to the offline reference.
    let victim = workers.remove(0);
    let victim_addr = victim.addr();
    victim.shutdown();
    println!("killed worker {victim_addr}");
    let request = Request::run(
        Some("after-kill".into()),
        RunRequest::new(to_qasm3(&circuit), shots, seed + 1, "auto"),
    );
    let survived = round_trip(coordinator.addr(), &request);
    let direct = Backend::Auto
        .sample_shots(&circuit, shots as usize, &Executor::sequential(seed + 1))
        .expect("direct sampling");
    match &survived {
        Response::Ok { tallies, .. } => {
            assert_eq!(tallies, &direct, "post-kill response diverged");
            println!("after worker death: still matches Backend::sample_shots ✓");
        }
        other => panic!("unexpected response {other:?}"),
    }

    coordinator.shutdown();
    for worker in workers {
        worker.shutdown();
    }
}
