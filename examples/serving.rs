//! The serving layer, end to end in one process: spawn a `service`
//! instance on an ephemeral port, submit jobs over loopback TCP as
//! OpenQASM 3 text, and verify the serving guarantee — the tallies are
//! bit-identical to a direct `Backend::sample_shots` call with the
//! same root seed and backend, and the repeat request is served from
//! the content-addressed cache without re-executing.
//!
//! Run with: `cargo run --release --example serving`

use circuit::circuit::Circuit;
use circuit::qasm::to_qasm3;
use engine::{Backend, Executor};
use service::{Request, Response, RunRequest, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() {
    // A teleportation circuit: mid-circuit measurement, feedback, and
    // reset all survive the QASM interchange.
    let mut circuit = Circuit::new(3, 3);
    circuit.h(1).cx(1, 2).cx(0, 1).h(0);
    circuit.measure(0, 0).measure(1, 1);
    circuit.cond_x(2, &[1]).cond_z(2, &[0]);
    circuit.measure(2, 2);
    let (shots, seed) = (2_000u64, 7u64);

    let handle = Service::spawn(ServiceConfig::default()).expect("spawn service");
    println!("serving on {}", handle.addr());

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut round_trip = |request: &Request| -> Response {
        writer
            .write_all(request.to_line().as_bytes())
            .expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        print!("<- {line}");
        Response::from_line(&line).expect("decode")
    };

    let request = Request::run(
        Some("demo".into()),
        RunRequest::new(to_qasm3(&circuit), shots, seed, "auto"),
    );
    let cold = round_trip(&request);
    let warm = round_trip(&request);

    // The serving guarantee: both responses carry exactly the counts a
    // local, offline run produces.
    let direct = Backend::Auto
        .sample_shots(&circuit, shots as usize, &Executor::sequential(seed))
        .expect("direct sampling");
    for (name, response) in [("cold", &cold), ("warm", &warm)] {
        match response {
            Response::Ok {
                tallies, cached, ..
            } => {
                assert_eq!(tallies, &direct, "{name} response diverged");
                println!("{name}: cached={cached}, matches Backend::sample_shots ✓");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}
