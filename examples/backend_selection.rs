//! Pluggable simulation backends: one sampling surface, representation
//! chosen at the boundary.
//!
//! Builds a Clifford GHZ circuit and a non-Clifford variant, then
//! samples both through `engine::Backend` — `Auto` routes the Clifford
//! circuit to the `O(n²)` stabilizer tableau and the non-Clifford one
//! to the statevector, while the exact density-matrix reference
//! cross-checks a small feed-forward circuit. Selection also works from
//! the environment: try `COMPAS_BACKEND=statevector cargo run --release
//! --example backend_selection`.
//!
//! Run with: `cargo run --release --example backend_selection`

use circuit::circuit::Circuit;
use engine::{Backend, Executor};

fn ghz(r: usize) -> Circuit {
    let mut c = Circuit::new(r, r);
    c.h(0);
    for q in 1..r {
        c.cx(q - 1, q);
    }
    for q in 0..r {
        c.measure(q, q);
    }
    c
}

fn main() {
    let exec = Executor::sequential(2026);
    let shots = 5_000;

    // 1. Clifford circuit: Auto takes the stabilizer fast path.
    let clifford = ghz(14);
    let backend = Backend::from_env();
    println!(
        "GHZ-14 is Clifford; backend '{backend}' resolves to '{}'",
        backend.resolve(&clifford)
    );
    let counts = backend.sample_shots(&clifford, shots, &exec).unwrap();
    let all_zero = counts.get(&0).copied().unwrap_or(0);
    let all_one = counts.get(&((1 << 14) - 1)).copied().unwrap_or(0);
    println!(
        "  {shots} shots: {} all-zeros, {} all-ones, {} other",
        all_zero,
        all_one,
        shots - all_zero - all_one
    );
    assert_eq!(all_zero + all_one, shots, "GHZ records must be correlated");

    // 2. The same records, explicitly on the statevector — identical
    //    tallies for one root seed, because the stabilizer backend
    //    consumes the shot streams in the statevector's pattern.
    let small = ghz(8);
    let stab = Backend::Stabilizer
        .sample_shots(&small, shots, &exec)
        .unwrap();
    let sv = Backend::StateVector
        .sample_shots(&small, shots, &exec)
        .unwrap();
    assert_eq!(stab, sv);
    println!("GHZ-8: stabilizer and statevector tallies are identical for one seed");

    // 3. Non-Clifford circuit: the stabilizer probe rejects it up
    //    front (typed error, no mid-shot panic); Auto falls back to the
    //    statevector.
    let mut toffoli = Circuit::new(3, 1);
    toffoli.h(0).h(1).ccx(0, 1, 2).measure(2, 0);
    let err = Backend::Stabilizer.supports(&toffoli).unwrap_err();
    println!("stabilizer probe says: {err}");
    assert_eq!(Backend::Auto.resolve(&toffoli), Backend::StateVector);
    let counts = Backend::Auto.sample_shots(&toffoli, shots, &exec).unwrap();
    let ones = counts.get(&1).copied().unwrap_or(0) as f64 / shots as f64;
    println!("Toffoli on |++0>: P(target=1) ~ {ones:.3} (expect ~0.25)");

    // 4. The exact density reference on a feed-forward teleport.
    let mut teleport = Circuit::new(3, 3);
    teleport.x(0);
    teleport.h(1).cx(1, 2);
    teleport.cx(0, 1).h(0);
    teleport.measure(0, 0).measure(1, 1);
    teleport.cond_x(2, &[1]).cond_z(2, &[0]);
    teleport.measure(2, 2);
    let exact = Backend::Density
        .sample_shots(&teleport, shots, &exec)
        .unwrap();
    let teleported_one = exact
        .iter()
        .filter(|(&k, _)| k & 0b100 != 0)
        .map(|(_, &v)| v)
        .sum::<usize>();
    println!("density reference: teleported |1> measured 1 in {teleported_one}/{shots} shots");
    assert_eq!(teleported_one, shots);
}
