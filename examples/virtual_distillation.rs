//! Virtual cooling and distillation (paper §6.3): compute expectation
//! values in χ = ρᵐ/tr(ρᵐ) without preparing the colder / cleaner state.
//!
//! Run with: `cargo run --release --example virtual_distillation`

use apps::prelude::*;
use compas::prelude::*;
use engine::Executor;
use stabilizer::pauli::Pauli;

fn main() {
    // ---- Virtual cooling on a transverse-field Ising chain ----
    let chain = IsingChain::new(2, 1.0, 0.6);
    let h_obs = chain.observable();
    let beta = 0.4;
    let rho = chain.thermal_state(beta);
    println!("TFIM chain: 2 sites, J = 1, h = 0.6, beta = {beta}");
    println!(
        "  energy at beta:    {:+.4}",
        chain.thermal_expectation(&h_obs, beta)
    );
    for m in [2usize, 3, 4] {
        let cooled = virtual_expectation_exact(&rho, &h_obs, m);
        let direct = chain.thermal_expectation(&h_obs, m as f64 * beta);
        println!("  m = {m}: virtual {cooled:+.4} vs direct thermal at {m}beta {direct:+.4}");
        assert!((cooled - direct).abs() < 1e-9, "Eq. 12 must hold exactly");
    }
    println!("  ground energy:     {:+.4}", chain.ground_energy());

    // Shot-based cooling estimate with the SWAP-test machinery.
    let den = MonolithicSwapTest::new(2, 2, MonolithicVariant::Fanout);
    let est = estimate_virtual_expectation(
        &den,
        MonolithicVariant::Fanout,
        &rho,
        &h_obs,
        1200,
        &Executor::sequential(3),
    );
    println!(
        "  sampled m = 2 energy: {:+.4} +/- {:.4}",
        est.value, est.std_err
    );

    // ---- Virtual distillation of a noisy |+> preparation ----
    let h = std::f64::consts::FRAC_1_SQRT_2;
    let plus = vec![mathkit::complex::c64(h, 0.0), mathkit::complex::c64(h, 0.0)];
    let prep = NoisyPreparation::depolarized(plus, 0.3);
    let x_obs = Observable::single(1, 0, Pauli::X, 1.0);
    println!("\nnoisy |+> with 30% depolarizing, measuring <X> (ideal = 1):");
    println!(
        "  raw noisy estimate: {:+.4}",
        prep.noisy_expectation(&x_obs)
    );
    for m in [2usize, 3, 4] {
        println!(
            "  distilled with m = {m}: {:+.4} (error {:.1e})",
            prep.distilled_expectation(&x_obs, m),
            prep.distillation_error(&x_obs, m)
        );
    }
    assert!(prep.distillation_error(&x_obs, 4) < 0.01);
}
