//! Quickstart: estimate tr(ρ₁ρ₂ρ₃) with the COMPAS distributed
//! multi-party SWAP test and compare against the exact value.
//!
//! Run with: `cargo run --release --example quickstart`

use compas::prelude::*;
use engine::Executor;
use qsim::qrand::random_density_matrix;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);

    // Three random single-qubit mixed states, one per QPU.
    let states: Vec<_> = (0..3).map(|_| random_density_matrix(1, &mut rng)).collect();
    let exact = exact_multivariate_trace(&states);

    // Compile the distributed protocol: 3 QPUs on a line, teledata
    // CSWAPs, constant depth, O(nk) Bell pairs.
    let protocol = CompasProtocol::new(3, 1, CswapScheme::Teledata);
    println!(
        "compiled: {} QPUs, circuit depth {}, {} Bell pairs per run",
        protocol.num_parties(),
        protocol.circuit().depth(),
        protocol.ledger().bell_pairs()
    );

    // Shot-based estimation (one X-basis and one Y-basis channel). The
    // executor is the single knob for how shots run: swap in
    // `Executor::pooled(engine::Engine::from_env(), 2026)` for the same
    // numbers on all cores.
    let estimate = protocol.estimate(&states, 2000, &Executor::sequential(2026));
    println!(
        "estimated tr(rho1 rho2 rho3) = {:.4} + {:.4}i  (+/- {:.4})",
        estimate.re, estimate.im, estimate.re_std_err
    );
    println!(
        "exact     tr(rho1 rho2 rho3) = {:.4} + {:.4}i",
        exact.re, exact.im
    );
    assert!(
        estimate.is_consistent_with(exact, 5.0),
        "estimate should agree with the exact trace"
    );
    println!("agreement within 5 sigma: OK");
}
